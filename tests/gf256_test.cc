#include <gtest/gtest.h>

#include "src/gf256/gf256.h"
#include "src/gf256/matrix.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

// ------------------------------------------------------------ field axioms --

TEST(Gf256Test, MulByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Gf256Mul(static_cast<uint8_t>(a), 0), 0);
    EXPECT_EQ(Gf256Mul(0, static_cast<uint8_t>(a)), 0);
    EXPECT_EQ(Gf256Mul(static_cast<uint8_t>(a), 1), a);
  }
}

TEST(Gf256Test, MulCommutative) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.NextU64());
    uint8_t b = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Gf256Mul(a, b), Gf256Mul(b, a));
  }
}

TEST(Gf256Test, MulAssociative) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.NextU64());
    uint8_t b = static_cast<uint8_t>(rng.NextU64());
    uint8_t c = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Gf256Mul(Gf256Mul(a, b), c), Gf256Mul(a, Gf256Mul(b, c)));
  }
}

TEST(Gf256Test, DistributesOverXor) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.NextU64());
    uint8_t b = static_cast<uint8_t>(rng.NextU64());
    uint8_t c = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Gf256Mul(a, b ^ c), Gf256Mul(a, b) ^ Gf256Mul(a, c));
  }
}

TEST(Gf256Test, InverseIsExact) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = Gf256Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Gf256Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.NextU64());
    uint8_t b = static_cast<uint8_t>(rng.NextU64() | 1);  // nonzero-ish
    if (b == 0) continue;
    EXPECT_EQ(Gf256Div(Gf256Mul(a, b), b), a);
  }
}

TEST(Gf256Test, KnownProducts) {
  // Hand-checked products for poly 0x11d.
  EXPECT_EQ(Gf256Mul(2, 128), 29);       // 0x80*2 = 0x100 -> ^0x11d = 0x1d
  EXPECT_EQ(Gf256Mul(0xff, 0xff), 0xe2);
  EXPECT_EQ(Gf256Pow(2, 8), 29);
  EXPECT_EQ(Gf256Pow(2, 0), 1);
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  for (int e = 0; e < 20; ++e) {
    uint8_t expect = 1;
    for (int i = 0; i < e; ++i) {
      expect = Gf256Mul(expect, 3);
    }
    EXPECT_EQ(Gf256Pow(3, e), expect);
  }
}

// ------------------------------------------------------------- region ops --

TEST(Gf256RegionTest, AddMulMatchesScalarReference) {
  Rng rng(5);
  for (size_t size : {0ul, 1ul, 15ul, 16ul, 17ul, 63ul, 64ul, 1000ul, 4096ul}) {
    Bytes src = rng.RandomBytes(size);
    Bytes dst = rng.RandomBytes(size);
    for (uint8_t c : {0, 1, 2, 127, 255}) {
      Bytes expect = dst;
      for (size_t i = 0; i < size; ++i) {
        expect[i] ^= Gf256Mul(src[i], c);
      }
      Bytes got = dst;
      Gf256AddMulRegion(got, src, c);
      EXPECT_EQ(got, expect) << "size=" << size << " c=" << static_cast<int>(c);
    }
  }
}

TEST(Gf256RegionTest, ScalarAndLogExpAgree) {
  Rng rng(6);
  Bytes src = rng.RandomBytes(333);
  for (uint8_t c : {3, 99, 200}) {
    Bytes a = rng.RandomBytes(333);
    Bytes b = a;
    Gf256AddMulRegionScalar(a, src, c);
    Gf256AddMulRegionLogExp(b, src, c);
    EXPECT_EQ(a, b);
  }
}

TEST(Gf256RegionTest, MulRegionZeroClears) {
  Rng rng(7);
  Bytes src = rng.RandomBytes(100);
  Bytes dst = rng.RandomBytes(100);
  Gf256MulRegion(dst, src, 0);
  EXPECT_EQ(dst, Bytes(100, 0));
}

TEST(Gf256RegionTest, MulRegionOneCopies) {
  Rng rng(8);
  Bytes src = rng.RandomBytes(100);
  Bytes dst(100, 0xee);
  Gf256MulRegion(dst, src, 1);
  EXPECT_EQ(dst, src);
}

// ---------------------------------------------------------------- matrix --

TEST(MatrixTest, IdentityMultiplication) {
  Gf256Matrix id = Gf256Matrix::Identity(5);
  Gf256Matrix m(5, 5);
  Rng rng(9);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      m.Set(r, c, static_cast<uint8_t>(rng.NextU64()));
    }
  }
  EXPECT_EQ(id.Multiply(m), m);
  EXPECT_EQ(m.Multiply(id), m);
}

TEST(MatrixTest, InvertRoundTrip) {
  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 1 + static_cast<int>(rng.Uniform(8));
    Gf256Matrix m(n, n);
    // Random matrices over GF(256) are nonsingular with high probability;
    // retry until invertible.
    Result<Gf256Matrix> inv = Status::Internal("unset");
    do {
      for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
          m.Set(r, c, static_cast<uint8_t>(rng.NextU64()));
        }
      }
      inv = m.Invert();
    } while (!inv.ok());
    EXPECT_EQ(m.Multiply(inv.value()), Gf256Matrix::Identity(n));
  }
}

TEST(MatrixTest, SingularMatrixRejected) {
  Gf256Matrix m(2, 2, {1, 2, 1, 2});  // duplicate rows
  EXPECT_FALSE(m.Invert().ok());
}

TEST(MatrixTest, NonSquareInvertRejected) {
  Gf256Matrix m(2, 3);
  EXPECT_FALSE(m.Invert().ok());
}

TEST(MatrixTest, ExtendedCauchyTopIsIdentity) {
  Gf256Matrix m = Gf256Matrix::ExtendedCauchy(6, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(m.At(r, c), r == c ? 1 : 0);
    }
  }
}

// The MDS property: EVERY k-row submatrix must be invertible. Exhaustive
// over all k-subsets for small (n, k) pairs.
class MdsPropertyTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MdsPropertyTest, AllKSubsetsInvertible) {
  auto [n, k] = GetParam();
  Gf256Matrix m = Gf256Matrix::ExtendedCauchy(n, k);
  std::vector<int> pick(k);
  for (int i = 0; i < k; ++i) pick[i] = i;
  int checked = 0;
  while (true) {
    EXPECT_TRUE(m.SelectRows(pick).Invert().ok())
        << "singular submatrix for n=" << n << " k=" << k;
    ++checked;
    int i = k - 1;
    while (i >= 0 && pick[i] == n - (k - i)) --i;
    if (i < 0) break;
    ++pick[i];
    for (int j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(SmallCodes, MdsPropertyTest,
                         ::testing::Values(std::make_pair(4, 3), std::make_pair(4, 2),
                                           std::make_pair(5, 3), std::make_pair(6, 4),
                                           std::make_pair(8, 6), std::make_pair(10, 8),
                                           std::make_pair(20, 15)));

TEST(MatrixTest, SelectRowsPicksCorrectRows) {
  Gf256Matrix m = Gf256Matrix::ExtendedCauchy(5, 3);
  Gf256Matrix sel = m.SelectRows({4, 0});
  EXPECT_EQ(sel.rows(), 2);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(sel.At(0, c), m.At(4, c));
    EXPECT_EQ(sel.At(1, c), m.At(0, c));
  }
}

}  // namespace
}  // namespace cdstore
