// End-to-end tests of the versioned backup namespace: generation-aware
// uploads, ListVersions with exact per-generation logical/unique bytes,
// generation-selected restore, retention-driven pruning with GC
// reclamation, repair of a pruned-down namespace, and dedup exactness
// under concurrent sessions (the TSAN-sensitive part).
#include <gtest/gtest.h>

#include <limits>
#include <thread>

#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/trace/synthetic.h"
#include "src/util/fs_util.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

constexpr uint64_t kWeekMs = 7ull * 24 * 3600 * 1000;

class VersioningTest : public ::testing::Test {
 protected:
  static constexpr int kN = 4;

  void SetUp() override {
    for (int i = 0; i < kN; ++i) {
      backends_.push_back(std::make_unique<MemBackend>());
      ServerOptions so;
      so.index_dir = dir_.Sub("server" + std::to_string(i));
      so.container_capacity = 64 * 1024;  // small containers: more GC action
      auto server = CdstoreServer::Create(backends_.back().get(), so);
      ASSERT_TRUE(server.ok());
      servers_.push_back(std::move(server.value()));
      transports_.push_back(std::make_unique<InProcTransport>(servers_.back().get()));
    }
  }

  std::vector<Transport*> TransportPtrs() {
    std::vector<Transport*> out;
    for (auto& t : transports_) {
      out.push_back(t.get());
    }
    return out;
  }

  ClientOptions SmallClientOptions() {
    ClientOptions o;
    o.n = kN;
    o.k = 3;
    o.rabin.min_size = 512;
    o.rabin.avg_size = 2048;
    o.rabin.max_size = 8192;
    return o;
  }

  static UploadFileOptions NewGen(uint64_t week) {
    UploadFileOptions o;
    o.mode = PutFileMode::kNewGeneration;
    o.timestamp_ms = week * kWeekMs;
    return o;
  }

  uint64_t TotalBackendBytes() {
    uint64_t total = 0;
    for (auto& b : backends_) {
      total += b->total_bytes();
    }
    return total;
  }

  TempDir dir_;
  std::vector<std::unique_ptr<MemBackend>> backends_;
  std::vector<std::unique_ptr<CdstoreServer>> servers_;
  std::vector<std::unique_ptr<InProcTransport>> transports_;
};

// A weekly series: each week's file shares most content with its
// predecessor (FSL-shaped churn).
std::vector<Bytes> WeeklySeries(int weeks, double scale = 1.0) {
  SyntheticDatasetOptions opts = SyntheticDataset::GenerationSeriesDefaults(scale);
  opts.num_weeks = weeks;
  opts.user_bytes = static_cast<size_t>(192 * 1024 * scale);
  opts.segment_bytes = 16 * 1024;
  // At 12 segments the paper-shaped 4% weekly churn rounds to zero
  // modified segments; crank the rates so every test week actually
  // rewrites (3 segments) and appends (1 segment).
  opts.weekly_mod_rate = 0.25;
  opts.weekly_growth_rate = 0.1;
  SyntheticDataset data(opts);
  std::vector<Bytes> out;
  out.reserve(weeks);
  for (int w = 0; w < weeks; ++w) {
    out.push_back(data.FileFor(0, w));
  }
  return out;
}

TEST_F(VersioningTest, GenerationsAccumulateAndRestoreByteIdentically) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  std::vector<Bytes> weekly = WeeklySeries(4);
  for (size_t w = 0; w < weekly.size(); ++w) {
    UploadStats stats;
    ASSERT_TRUE(client.Upload("/home", weekly[w], &stats, NewGen(w + 1)).ok());
    EXPECT_EQ(stats.generation_id, w + 1);
  }

  auto versions = client.ListVersions("/home");
  ASSERT_TRUE(versions.ok()) << versions.status();
  ASSERT_EQ(versions.value().size(), weekly.size());
  for (size_t w = 0; w < weekly.size(); ++w) {
    const VersionInfo& v = versions.value()[w];
    EXPECT_EQ(v.generation_id, w + 1);
    EXPECT_EQ(v.logical_bytes, weekly[w].size());
    EXPECT_EQ(v.timestamp_ms, (w + 1) * kWeekMs);
    EXPECT_GT(v.num_secrets, 0u);
    EXPECT_GT(v.unique_bytes, 0u);  // every week modifies something
  }
  // Week 2+ dedups the unmodified segments against week 1 (the §5.2
  // effect; the test series rewrites 3 of 12 segments + appends 1, so the
  // incremental unique bytes stay well under half the full backup's).
  EXPECT_LT(versions.value()[1].unique_bytes, versions.value()[0].unique_bytes / 2);

  // Every generation restores byte-identically; 0 selects the latest.
  for (size_t w = 0; w < weekly.size(); ++w) {
    auto restored = client.Download("/home", nullptr, w + 1);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored.value(), weekly[w]) << "generation " << (w + 1);
  }
  EXPECT_EQ(client.Download("/home").value(), weekly.back());

  // One path, many generations: file_count counts paths.
  Bytes frame = servers_[0]->Handle(Encode(StatsRequest{}));
  StatsReply stats;
  ASSERT_TRUE(Decode(frame, &stats).ok());
  EXPECT_EQ(stats.file_count, 1u);
}

TEST_F(VersioningTest, ReplaceLatestKeepsSingleGeneration) {
  // The default (pre-versioning) overwrite semantics: re-upload replaces.
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes v1 = Rng(11).RandomBytes(60000);
  Bytes v2 = Rng(12).RandomBytes(60000);
  ASSERT_TRUE(client.Upload("/flat", v1).ok());
  uint64_t first_unique = client.ListVersions("/flat").value()[0].unique_bytes;
  EXPECT_GT(first_unique, 0u);
  // An identical-content overwrite carries the unique-bytes attribution
  // forward (nothing was dropped, nothing newly stored).
  ASSERT_TRUE(client.Upload("/flat", v1).ok());
  EXPECT_EQ(client.ListVersions("/flat").value()[0].unique_bytes, first_unique);
  ASSERT_TRUE(client.Upload("/flat", v2).ok());
  auto versions = client.ListVersions("/flat");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 1u);
  // Replacement reuses the id in place (keeps per-cloud id allocation in
  // lockstep across partial-failure retries), and fresh content's
  // attribution replaces the dropped generation's.
  EXPECT_EQ(versions.value()[0].generation_id, 1u);
  EXPECT_GT(versions.value()[0].unique_bytes, 0u);
  EXPECT_EQ(client.Download("/flat").value(), v2);
  // The replaced generation's shares are orphaned and reclaimable.
  uint64_t reclaimed = 0;
  for (int i = 0; i < kN; ++i) {
    auto gc = servers_[i]->CollectGarbage();
    ASSERT_TRUE(gc.ok());
    reclaimed += gc.value().bytes_reclaimed;
  }
  EXPECT_GT(reclaimed, v1.size());
  EXPECT_EQ(client.Download("/flat").value(), v2);
}

TEST_F(VersioningTest, DeleteVersionKeepsSharedShares) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  std::vector<Bytes> weekly = WeeklySeries(2);
  ASSERT_TRUE(client.Upload("/home", weekly[0], nullptr, NewGen(1)).ok());
  ASSERT_TRUE(client.Upload("/home", weekly[1], nullptr, NewGen(2)).ok());

  ASSERT_TRUE(client.DeleteVersion("/home", 1).ok());
  auto versions = client.ListVersions("/home");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 1u);
  EXPECT_EQ(versions.value()[0].generation_id, 2u);

  // Deleting the pruned generation's references must not take shares the
  // survivor still names: gen 2 restores even after GC migrates/reclaims.
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(servers_[i]->CollectGarbage().ok());
  }
  EXPECT_EQ(client.Download("/home").value(), weekly[1]);
  // The deleted generation is gone.
  EXPECT_EQ(client.Download("/home", nullptr, 1).status().code(), StatusCode::kNotFound);
}

TEST_F(VersioningTest, RetentionPruneReclaimsBackendSpace) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  std::vector<Bytes> weekly = WeeklySeries(5);
  for (size_t w = 0; w < weekly.size(); ++w) {
    ASSERT_TRUE(client.Upload("/home", weekly[w], nullptr, NewGen(w + 1)).ok());
  }
  // Flush so every uploaded share is on the backend before measuring.
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(servers_[i]->Flush().ok());
  }
  uint64_t before = TotalBackendBytes();

  RetentionPolicy policy;
  policy.keep_last_n = 2;
  auto pruned = client.ApplyRetention("/home", policy);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  EXPECT_EQ(pruned.value().generations_deleted, 3u);
  EXPECT_EQ(pruned.value().deleted_generations, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_GT(pruned.value().shares_orphaned, 0u);

  auto versions = client.ListVersions("/home");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 2u);
  EXPECT_EQ(versions.value()[0].generation_id, 4u);
  EXPECT_EQ(versions.value()[1].generation_id, 5u);

  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(servers_[i]->CollectGarbage().ok());
  }
  uint64_t after = TotalBackendBytes();
  EXPECT_LT(after, before) << "prune + GC must reclaim backend bytes";

  // Survivors restore byte-identically; pruned generations are NotFound.
  EXPECT_EQ(client.Download("/home", nullptr, 4).value(), weekly[3]);
  EXPECT_EQ(client.Download("/home", nullptr, 5).value(), weekly[4]);
  EXPECT_EQ(client.Download("/home", nullptr, 2).status().code(), StatusCode::kNotFound);
}

TEST_F(VersioningTest, RetentionWindowRule) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  std::vector<Bytes> weekly = WeeklySeries(4);
  for (size_t w = 0; w < weekly.size(); ++w) {
    ASSERT_TRUE(client.Upload("/home", weekly[w], nullptr, NewGen(w + 1)).ok());
  }
  // Keep anything backed up within the last ~1.5 weeks of "now" (= end of
  // week 4): generations 3 and 4 survive on the window rule alone.
  RetentionPolicy policy;
  policy.keep_within_ms = kWeekMs + kWeekMs / 2;
  policy.now_ms = 4 * kWeekMs;
  auto pruned = client.ApplyRetention("/home", policy);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  EXPECT_EQ(pruned.value().deleted_generations, (std::vector<uint64_t>{1, 2}));
  auto versions = client.ListVersions("/home");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 2u);
  EXPECT_EQ(versions.value()[0].generation_id, 3u);
}

TEST_F(VersioningTest, RetentionHugeWindowKeepsEverything) {
  // Overflow regression: a UINT64_MAX window ("keep everything") must not
  // wrap the age test into prune-everything.
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  std::vector<Bytes> weekly = WeeklySeries(3);
  for (size_t w = 0; w < weekly.size(); ++w) {
    ASSERT_TRUE(client.Upload("/home", weekly[w], nullptr, NewGen(w + 1)).ok());
  }
  RetentionPolicy policy;
  policy.keep_within_ms = std::numeric_limits<uint64_t>::max();
  policy.now_ms = 10 * kWeekMs;
  auto pruned = client.ApplyRetention("/home", policy);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  EXPECT_EQ(pruned.value().generations_deleted, 0u);
  EXPECT_EQ(client.ListVersions("/home").value().size(), 3u);
}

TEST_F(VersioningTest, DownloadSurvivesLatestSkewAcrossClouds) {
  // An interrupted maintenance op can leave clouds at different LATEST
  // generations while all still hold the overlap: a restore must re-probe
  // mismatched clouds with the resolved generation instead of discarding
  // them (k healthy copies exist).
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  std::vector<Bytes> weekly = WeeklySeries(2);
  ASSERT_TRUE(client.Upload("/home", weekly[0], nullptr, NewGen(1)).ok());
  ASSERT_TRUE(client.Upload("/home", weekly[1], nullptr, NewGen(2)).ok());

  // Drop generation 2 on clouds 0 and 3 only (the partial op: the other
  // clouds are unreachable while it runs): latest is now 1 on clouds
  // {0,3} and 2 on clouds {1,2}.
  for (int c : {0, 3}) {
    for (int i = 0; i < kN; ++i) {
      transports_[i]->set_connected(i == c);
    }
    // Non-ok overall (three clouds unreachable), but cloud c's delete
    // landed.
    (void)client.DeleteVersion("/home", 2);
  }
  for (int i = 0; i < kN; ++i) {
    transports_[i]->set_connected(true);
  }
  // The skew is real: cloud 0 reports one generation left.
  ASSERT_EQ(client.ListVersions("/home").value().size(), 1u);

  // Latest restore: cloud 0 answers first and pins generation 1; clouds 1
  // and 2 report latest 2 but still hold 1 and must be re-recruited.
  auto restored = client.Download("/home");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), weekly[0]);
}

TEST_F(VersioningTest, RepairRestoresAnOlderGenerationUnderItsId) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  std::vector<Bytes> weekly = WeeklySeries(3);
  for (size_t w = 0; w < weekly.size(); ++w) {
    ASSERT_TRUE(client.Upload("/home", weekly[w], nullptr, NewGen(w + 1)).ok());
  }

  // Cloud 2 loses its state entirely (server down first, then the store).
  servers_[2].reset();
  backends_[2] = std::make_unique<MemBackend>();
  ServerOptions so;
  so.index_dir = dir_.Sub("server2-fresh");
  so.container_capacity = 64 * 1024;
  auto fresh = CdstoreServer::Create(backends_[2].get(), so);
  ASSERT_TRUE(fresh.ok());
  servers_[2] = std::move(fresh.value());
  transports_[2] = std::make_unique<InProcTransport>(servers_[2].get());

  CdstoreClient repairer(TransportPtrs(), 1, SmallClientOptions());
  ASSERT_TRUE(repairer.RepairFile("/home", 2, 2).ok());
  ASSERT_TRUE(repairer.RepairFile("/home", 2).ok());  // latest (gen 3)

  // The repaired copies landed under their original ids: with cloud 0
  // down, restores that must recruit cloud 2 still resolve generations.
  transports_[0]->set_connected(false);
  CdstoreClient degraded(TransportPtrs(), 1, SmallClientOptions());
  EXPECT_EQ(degraded.Download("/home", nullptr, 2).value(), weekly[1]);
  EXPECT_EQ(degraded.Download("/home").value(), weekly[2]);
  transports_[0]->set_connected(true);
}

TEST_F(VersioningTest, DeleteMissingFileIsCleanNotFound) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  // Client surface.
  Status st = client.DeleteFile("/never-uploaded");
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st;
  // Server reply, via the typed dispatch path a remote client exercises.
  auto path_keys_frame = transports_[0]->Call(Encode([&] {
    DeleteFileRequest req;
    req.user = 1;
    req.path_key = BytesOf("no-such-path-share");
    return req;
  }()));
  ASSERT_TRUE(path_keys_frame.ok());
  Status wire = DecodeIfError(path_keys_frame.value());
  EXPECT_EQ(wire.code(), StatusCode::kNotFound);
  EXPECT_EQ(wire.message(), "file not found");
  // DeleteVersion and ListVersions on missing paths are NotFound too.
  EXPECT_EQ(client.DeleteVersion("/never-uploaded", 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(client.ListVersions("/never-uploaded").status().code(), StatusCode::kNotFound);
  // And a missing *generation* of an existing path.
  ASSERT_TRUE(client.Upload("/exists", Rng(9).RandomBytes(20000)).ok());
  EXPECT_EQ(client.DeleteVersion("/exists", 99).code(), StatusCode::kNotFound);
}

TEST_F(VersioningTest, DeleteFileDropsEveryGeneration) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  std::vector<Bytes> weekly = WeeklySeries(3);
  for (size_t w = 0; w < weekly.size(); ++w) {
    ASSERT_TRUE(client.Upload("/home", weekly[w], nullptr, NewGen(w + 1)).ok());
  }
  ASSERT_TRUE(client.DeleteFile("/home").ok());
  EXPECT_EQ(client.ListVersions("/home").status().code(), StatusCode::kNotFound);
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(servers_[i]->CollectGarbage().ok());
  }
  // Every generation's shares were dereferenced: nothing unique remains.
  EXPECT_EQ(servers_[0]->unique_share_count(), 0u);
}

TEST_F(VersioningTest, WireRoundTripsForVersioningMessages) {
  PutFileRequest put;
  put.user = 3;
  put.path_key = BytesOf("pk");
  put.file_size = 999;
  put.mode = PutFileMode::kPutGeneration;
  put.generation_id = 17;
  put.timestamp_ms = 123456789;
  PutFileRequest put_back;
  ASSERT_TRUE(Decode(Encode(put), &put_back).ok());
  EXPECT_EQ(put_back.mode, PutFileMode::kPutGeneration);
  EXPECT_EQ(put_back.generation_id, 17u);
  EXPECT_EQ(put_back.timestamp_ms, 123456789u);

  ListVersionsReply lv;
  lv.versions.push_back({1, 100, 50, 7, 1000});
  lv.versions.push_back({2, 200, 10, 9, 2000});
  ListVersionsReply lv_back;
  ASSERT_TRUE(Decode(Encode(lv), &lv_back).ok());
  ASSERT_EQ(lv_back.versions.size(), 2u);
  EXPECT_EQ(lv_back.versions[1].generation_id, 2u);
  EXPECT_EQ(lv_back.versions[1].unique_bytes, 10u);
  EXPECT_EQ(lv_back.versions[1].timestamp_ms, 2000u);

  ApplyRetentionRequest ar;
  ar.user = 5;
  ar.path_key = BytesOf("p");
  ar.policy = {3, 1000, 5000};
  ApplyRetentionRequest ar_back;
  ASSERT_TRUE(Decode(Encode(ar), &ar_back).ok());
  EXPECT_EQ(ar_back.policy.keep_last_n, 3u);
  EXPECT_EQ(ar_back.policy.keep_within_ms, 1000u);
  EXPECT_EQ(ar_back.policy.now_ms, 5000u);

  ApplyRetentionReply arr;
  arr.generations_deleted = 2;
  arr.shares_orphaned = 40;
  arr.logical_bytes_deleted = 4096;
  arr.deleted_generations = {1, 2};
  ApplyRetentionReply arr_back;
  ASSERT_TRUE(Decode(Encode(arr), &arr_back).ok());
  EXPECT_EQ(arr_back.deleted_generations, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(arr_back.logical_bytes_deleted, 4096u);

  DeleteVersionRequest dv;
  dv.user = 1;
  dv.path_key = BytesOf("x");
  dv.generation_id = 4;
  DeleteVersionRequest dv_back;
  ASSERT_TRUE(Decode(Encode(dv), &dv_back).ok());
  EXPECT_EQ(dv_back.generation_id, 4u);
}

// The acceptance-criteria invariant: per-generation unique bytes are EXACT
// under concurrent sessions — across every user and generation they sum to
// precisely the server's physical share bytes, because each share's first
// reference is attributed exactly once under the striped locks.
TEST_F(VersioningTest, ConcurrentSessionsKeepUniqueBytesExact) {
  constexpr int kClients = 4;
  constexpr int kWeeks = 3;
  // Users share a base pool (FslDefaults' cross-user redundancy), so
  // first-reference attribution actually races across sessions.
  SyntheticDatasetOptions dopts = SyntheticDataset::FslDefaults(1.0);
  dopts.num_users = kClients;
  dopts.num_weeks = kWeeks;
  dopts.user_bytes = 96 * 1024;
  dopts.segment_bytes = 8 * 1024;
  dopts.shared_base_fraction = 0.5;
  SyntheticDataset data(dopts);

  std::vector<std::thread> threads;
  std::vector<Status> results(kClients, Status::Ok());
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c]() {
      CdstoreClient client(TransportPtrs(), /*user=*/c + 1, SmallClientOptions());
      auto session = client.OpenBackupSession();
      if (!session.ok()) {
        results[c] = session.status();
        return;
      }
      for (int w = 0; w < kWeeks; ++w) {
        Status st = session.value()->Upload("/u" + std::to_string(c), data.FileFor(c, w),
                                            nullptr, NewGen(w + 1));
        if (!st.ok()) {
          results[c] = st;
          return;
        }
      }
      results[c] = session.value()->Close();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(results[c].ok()) << "client " << c << ": " << results[c];
  }

  // Exactness: the sum of unique_bytes over all users and generations
  // equals the physical share bytes the server accounted — every stored
  // share's first reference was attributed exactly once, despite the
  // races. (ListVersions answers from cloud 0; the other clouds run the
  // identical accounting on their own shares.)
  uint64_t unique_sum = 0;
  for (int c = 0; c < kClients; ++c) {
    CdstoreClient client(TransportPtrs(), c + 1, SmallClientOptions());
    auto versions = client.ListVersions("/u" + std::to_string(c));
    ASSERT_TRUE(versions.ok()) << versions.status();
    EXPECT_EQ(versions.value().size(), static_cast<size_t>(kWeeks));
    for (const VersionInfo& v : versions.value()) {
      unique_sum += v.unique_bytes;
    }
  }
  EXPECT_EQ(unique_sum, servers_[0]->physical_share_bytes())
      << "unique-bytes attribution must be exact under concurrency";

  // And every user's latest restores byte-identically after the race.
  for (int c = 0; c < kClients; ++c) {
    CdstoreClient client(TransportPtrs(), c + 1, SmallClientOptions());
    EXPECT_EQ(client.Download("/u" + std::to_string(c)).value(),
              data.FileFor(c, kWeeks - 1));
  }
}

}  // namespace
}  // namespace cdstore
