// SIMD-vs-scalar agreement tests for the runtime-dispatched hot kernels:
// the AVX2/SSSE3 GF(256) region multiplies and the SHA-NI block compression
// must be bit-identical to the portable paths on random inputs, odd lengths,
// and boundary sizes.
#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/gf256/gf256.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

// Region sizes straddling every dispatch boundary: scalar tail only, one
// vector, odd tails, and large regions.
const size_t kSizes[] = {1,  15,  16,  17,  31,  32,  33,   63,   64,   65,
                         95, 127, 128, 129, 255, 333, 4096, 4097, 65536, 65537};

TEST(SimdGf256Test, Ssse3MatchesScalar) {
  if (!internal::SimdAvailable()) {
    GTEST_SKIP() << "SSSE3 unavailable";
  }
  const auto& t = internal::GetGf256Tables();
  Rng rng(101);
  for (size_t size : kSizes) {
    Bytes src = rng.RandomBytes(size);
    Bytes dst = rng.RandomBytes(size);
    for (uint8_t c : {2, 3, 29, 127, 128, 254, 255}) {
      Bytes expect = dst;
      Gf256AddMulRegionScalar(expect, src, c);
      Bytes got = dst;
      internal::AddMulRegionSsse3(got.data(), src.data(), size, t.split_lo[c], t.split_hi[c]);
      ASSERT_EQ(got, expect) << "size=" << size << " c=" << static_cast<int>(c);
    }
  }
}

TEST(SimdGf256Test, Avx2MatchesScalar) {
  if (!internal::Avx2Available()) {
    GTEST_SKIP() << "AVX2 unavailable";
  }
  const auto& t = internal::GetGf256Tables();
  Rng rng(102);
  for (size_t size : kSizes) {
    Bytes src = rng.RandomBytes(size);
    Bytes dst = rng.RandomBytes(size);
    for (uint8_t c : {2, 3, 29, 127, 128, 254, 255}) {
      Bytes expect = dst;
      Gf256AddMulRegionScalar(expect, src, c);
      Bytes got = dst;
      internal::AddMulRegionAvx2(got.data(), src.data(), size, t.split_lo[c], t.split_hi[c]);
      ASSERT_EQ(got, expect) << "size=" << size << " c=" << static_cast<int>(c);
    }
  }
}

TEST(SimdGf256Test, DispatchedRegionOpsMatchScalarAllConstants) {
  // Whatever tier Gf256AddMulRegion selects must agree with scalar for
  // every constant, including the c==1 XOR shortcut.
  Rng rng(103);
  Bytes src = rng.RandomBytes(1000);
  Bytes dst = rng.RandomBytes(1000);
  for (int c = 0; c < 256; ++c) {
    Bytes expect = dst;
    Gf256AddMulRegionScalar(expect, src, static_cast<uint8_t>(c));
    Bytes got = dst;
    Gf256AddMulRegion(got, src, static_cast<uint8_t>(c));
    ASSERT_EQ(got, expect) << "c=" << c;
  }
}

TEST(SimdSha256Test, ShaNiMatchesScalarBlocks) {
  if (!internal::ShaNiAvailable()) {
    GTEST_SKIP() << "SHA-NI unavailable";
  }
  Rng rng(104);
  for (size_t blocks : {1ul, 2ul, 3ul, 7ul, 64ul, 1000ul}) {
    Bytes data = rng.RandomBytes(blocks * Sha256::kBlockSize);
    uint32_t scalar_state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    uint32_t ni_state[8];
    std::copy(std::begin(scalar_state), std::end(scalar_state), std::begin(ni_state));
    internal::Sha256ProcessBlocksScalar(scalar_state, data.data(), blocks);
    internal::ShaNiProcessBlocks(ni_state, data.data(), blocks);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(ni_state[i], scalar_state[i]) << "blocks=" << blocks << " word=" << i;
    }
  }
}

TEST(SimdSha256Test, DigestsMatchScalarOnOddLengths) {
  // End-to-end: the dispatched Sha256 class vs a digest computed with the
  // scalar compressor only, across lengths that exercise buffering, padding
  // with and without an extra block, and multi-block bulk input.
  Rng rng(105);
  for (size_t len : {0ul, 1ul, 3ul, 55ul, 56ul, 57ul, 63ul, 64ul, 65ul, 119ul, 120ul,
                     127ul, 128ul, 1000ul, 65537ul}) {
    Bytes data = rng.RandomBytes(len);
    Bytes dispatched = Sha256::Hash(data);

    // Scalar reference: replicate pad-and-compress without the class.
    uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                         0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    Bytes padded = data;
    padded.push_back(0x80);
    while (padded.size() % Sha256::kBlockSize != 56) {
      padded.push_back(0);
    }
    uint64_t bit_len = static_cast<uint64_t>(len) * 8;
    for (int i = 7; i >= 0; --i) {
      padded.push_back(static_cast<uint8_t>(bit_len >> (8 * i)));
    }
    internal::Sha256ProcessBlocksScalar(state, padded.data(),
                                        padded.size() / Sha256::kBlockSize);
    Bytes expect(Sha256::kDigestSize);
    for (int i = 0; i < 8; ++i) {
      expect[4 * i] = static_cast<uint8_t>(state[i] >> 24);
      expect[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
      expect[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
      expect[4 * i + 3] = static_cast<uint8_t>(state[i]);
    }
    ASSERT_EQ(dispatched, expect) << "len=" << len;
  }
}

TEST(SimdDispatchTest, TierIsConsistentWithPredicates) {
  int tier = Gf256SimdTier();
  if (internal::Avx2Available()) {
    EXPECT_EQ(tier, 2);
  } else if (internal::SimdAvailable()) {
    EXPECT_EQ(tier, 1);
  } else {
    EXPECT_EQ(tier, 0);
  }
}

}  // namespace
}  // namespace cdstore
