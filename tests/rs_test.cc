#include <gtest/gtest.h>

#include "src/rs/reed_solomon.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

std::vector<Bytes> RandomShards(Rng* rng, int k, size_t size) {
  std::vector<Bytes> shards;
  for (int i = 0; i < k; ++i) {
    shards.push_back(rng->RandomBytes(size));
  }
  return shards;
}

TEST(ReedSolomonTest, SystematicPrefixEqualsData) {
  Rng rng(1);
  ReedSolomon rs(6, 4);
  auto data = RandomShards(&rng, 4, 128);
  std::vector<Bytes> all;
  ASSERT_TRUE(rs.Encode(data, &all).ok());
  ASSERT_EQ(all.size(), 6u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(all[i], data[i]);
  }
}

TEST(ReedSolomonTest, ParityDiffersFromData) {
  Rng rng(2);
  ReedSolomon rs(4, 3);
  auto data = RandomShards(&rng, 3, 64);
  std::vector<Bytes> all;
  ASSERT_TRUE(rs.Encode(data, &all).ok());
  EXPECT_NE(all[3], all[0]);
  EXPECT_NE(all[3], all[1]);
}

// Exhaustive any-k-subset reconstruction for a grid of (n, k).
class RsSubsetTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RsSubsetTest, EveryKSubsetDecodes) {
  auto [n, k] = GetParam();
  Rng rng(42 + n * 100 + k);
  ReedSolomon rs(n, k);
  auto data = RandomShards(&rng, k, 100);
  std::vector<Bytes> all;
  ASSERT_TRUE(rs.Encode(data, &all).ok());

  std::vector<int> pick(k);
  for (int i = 0; i < k; ++i) pick[i] = i;
  while (true) {
    std::vector<int> ids(pick.begin(), pick.end());
    std::vector<Bytes> shards;
    for (int id : ids) shards.push_back(all[id]);
    std::vector<Bytes> decoded;
    ASSERT_TRUE(rs.Decode(ids, shards, &decoded).ok());
    for (int j = 0; j < k; ++j) {
      EXPECT_EQ(decoded[j], data[j]) << "subset failed, n=" << n << " k=" << k;
    }
    int i = k - 1;
    while (i >= 0 && pick[i] == n - (k - i)) --i;
    if (i < 0) break;
    ++pick[i];
    for (int j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RsSubsetTest,
                         ::testing::Values(std::make_pair(4, 3), std::make_pair(4, 2),
                                           std::make_pair(5, 3), std::make_pair(6, 4),
                                           std::make_pair(8, 6), std::make_pair(10, 7),
                                           std::make_pair(12, 9), std::make_pair(20, 15)));

TEST(ReedSolomonTest, DecodeWithMoreThanKShares) {
  Rng rng(3);
  ReedSolomon rs(6, 3);
  auto data = RandomShards(&rng, 3, 50);
  std::vector<Bytes> all;
  ASSERT_TRUE(rs.Encode(data, &all).ok());
  std::vector<int> ids = {5, 1, 4, 2};  // 4 > k shards, shuffled order
  std::vector<Bytes> shards;
  for (int id : ids) shards.push_back(all[id]);
  std::vector<Bytes> decoded;
  ASSERT_TRUE(rs.Decode(ids, shards, &decoded).ok());
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(decoded[j], data[j]);
  }
}

TEST(ReedSolomonTest, RepairRebuildsLostShards) {
  Rng rng(4);
  ReedSolomon rs(6, 4);
  auto data = RandomShards(&rng, 4, 80);
  std::vector<Bytes> all;
  ASSERT_TRUE(rs.Encode(data, &all).ok());
  // Clouds 0 and 5 failed; rebuild from the rest.
  std::vector<int> ids = {1, 2, 3, 4};
  std::vector<Bytes> shards;
  for (int id : ids) shards.push_back(all[id]);
  std::vector<Bytes> rebuilt;
  ASSERT_TRUE(rs.Repair(ids, shards, {0, 5}, &rebuilt).ok());
  EXPECT_EQ(rebuilt[0], all[0]);
  EXPECT_EQ(rebuilt[1], all[5]);
}

TEST(ReedSolomonTest, ErrorsOnBadInput) {
  ReedSolomon rs(4, 3);
  std::vector<Bytes> decoded;
  // Too few shards.
  EXPECT_FALSE(rs.Decode({0, 1}, {Bytes(8), Bytes(8)}, &decoded).ok());
  // Mismatched sizes.
  EXPECT_FALSE(rs.Decode({0, 1, 2}, {Bytes(8), Bytes(9), Bytes(8)}, &decoded).ok());
  // Duplicate ids.
  EXPECT_FALSE(rs.Decode({0, 1, 1}, {Bytes(8), Bytes(8), Bytes(8)}, &decoded).ok());
  // Out-of-range id.
  EXPECT_FALSE(rs.Decode({0, 1, 7}, {Bytes(8), Bytes(8), Bytes(8)}, &decoded).ok());
  // Wrong shard count for encode.
  std::vector<Bytes> out;
  EXPECT_FALSE(rs.Encode({Bytes(8), Bytes(8)}, &out).ok());
}

TEST(SplitJoinTest, RoundTripWithPadding) {
  Rng rng(5);
  for (size_t size : {0ul, 1ul, 2ul, 3ul, 100ul, 101ul, 102ul}) {
    Bytes data = rng.RandomBytes(size);
    auto shards = SplitIntoShards(data, 3);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].size(), shards[1].size());
    EXPECT_EQ(shards[1].size(), shards[2].size());
    Bytes joined = JoinShards(shards, size);
    EXPECT_EQ(joined, data) << "size=" << size;
  }
}

TEST(SplitJoinTest, EmptyInputYieldsNonEmptyShards) {
  auto shards = SplitIntoShards(ConstByteSpan{}, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0].size(), 1u);  // one zero byte to keep RS well-defined
}

TEST(ReedSolomonTest, LargeCode) {
  // n near the GF(256) limit.
  Rng rng(6);
  ReedSolomon rs(255, 200);
  auto data = RandomShards(&rng, 200, 16);
  std::vector<Bytes> all;
  ASSERT_TRUE(rs.Encode(data, &all).ok());
  // Decode from the last 200 shards (all parity-heavy subset).
  std::vector<int> ids;
  std::vector<Bytes> shards;
  for (int i = 55; i < 255; ++i) {
    ids.push_back(i);
    shards.push_back(all[i]);
  }
  std::vector<Bytes> decoded;
  ASSERT_TRUE(rs.Decode(ids, shards, &decoded).ok());
  for (int j = 0; j < 200; ++j) {
    EXPECT_EQ(decoded[j], data[j]);
  }
}

}  // namespace
}  // namespace cdstore
