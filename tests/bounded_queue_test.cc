// BoundedQueue: FIFO ordering, MPMC correctness, backpressure blocking,
// close/drain semantics, and cancel behaviour — the contract the streaming
// upload pipeline depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "src/util/bounded_queue.h"
#include "src/util/sync.h"

namespace cdstore {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.Push(i));
  }
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3)) << "queue at capacity";
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEndOfStream) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3)) << "push after close must fail";
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt) << "closed and drained";
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, CancelDiscardsBufferedItems) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Cancel();
  EXPECT_EQ(q.Pop(), std::nullopt) << "cancel discards buffered items";
  EXPECT_FALSE(q.Push(3));
}

TEST(BoundedQueueTest, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_push_done{false};
  std::thread producer([&]() {
    EXPECT_TRUE(q.Push(2));  // blocks until the consumer pops
    second_push_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_push_done) << "push must block while full";
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(second_push_done);
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BoundedQueueTest, CloseUnblocksWaitingProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&]() { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Cancel();
  producer.join();  // would hang if Cancel didn't wake the producer
}

TEST(BoundedQueueTest, CloseUnblocksWaitingConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&]() { EXPECT_EQ(q.Pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();  // would hang if Close didn't wake the consumer
}

TEST(BoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(16);  // small capacity: forces contention + blocking

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  Mutex seen_mu;
  std::vector<uint8_t> seen(kProducers * kPerProducer, 0);
  std::atomic<int> popped{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&]() {
      while (auto v = q.Pop()) {
        MutexLock lock(seen_mu);
        ASSERT_GE(*v, 0);
        ASSERT_LT(*v, kProducers * kPerProducer);
        ASSERT_EQ(seen[*v], 0) << "duplicate delivery of " << *v;
        seen[*v] = 1;
        ++popped;
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), kProducers * kPerProducer);
}

TEST(BoundedQueueTest, PerProducerOrderPreserved) {
  // With a single consumer, items from one producer must arrive in the
  // order that producer pushed them (FIFO per producer).
  BoundedQueue<std::pair<int, int>> q(8);
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push({p, i}));
      }
    });
  }
  std::vector<int> next(kProducers, 0);
  std::thread consumer([&]() {
    while (auto v = q.Pop()) {
      auto [p, i] = *v;
      EXPECT_EQ(i, next[p]) << "out-of-order delivery from producer " << p;
      next[p] = i + 1;
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  consumer.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer);
  }
}

TEST(BoundedQueueTest, MoveOnlyTypes) {
  BoundedQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.Push(std::make_unique<int>(7)));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

}  // namespace
}  // namespace cdstore
