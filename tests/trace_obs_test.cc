// Tests of the request-tracing subsystem (src/obs/trace.h): cross-thread
// span parenting through explicit context handoff, wire round-trip of the
// propagated trace context (including byte-compat of frames WITHOUT the
// envelope — the pre-tracing path must be untouched), once-per-request
// sampling determinism, worst-K flight-recorder retention with counted
// evictions, golden Chrome trace-event JSON, a record-vs-dump race (the
// TSAN target for the seqlock rings), and the end-to-end acceptance run:
// one traced upload through four simulated clouds yields ONE connected
// trace whose client and server spans share the propagated trace_id.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/message.h"
#include "src/net/service.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/backend.h"
#include "src/util/fs_util.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

// Finds the first span with `name` in a dump, failing the test if absent.
const TraceSpanSample* FindSpan(const std::vector<TraceSpanSample>& spans,
                                const std::string& name) {
  for (const TraceSpanSample& s : spans) {
    if (s.name == name) {
      return &s;
    }
  }
  ADD_FAILURE() << "no span named " << name;
  return nullptr;
}

// ------------------------------------------------------- span mechanics

TEST(TraceSpanTest, NestedSpansChainUnderThreadParent) {
  Tracer tracer;
  TraceRequest req(&tracer, "root");
  {
    ScopedTraceParent parent(req.context());
    ScopedSpan outer(&tracer, "outer");
    ASSERT_TRUE(outer.active());
    // The open span became the thread's current parent.
    EXPECT_EQ(CurrentTraceContext().span_id, outer.context().span_id);
    ScopedSpan inner(&tracer, "inner");
    EXPECT_EQ(inner.context().trace_id, req.context().trace_id);
  }
  // The scope restored the pre-span parent (inactive here).
  EXPECT_FALSE(CurrentTraceContext().active());
  req.End();

  TraceDump dump = tracer.Dump();
  ASSERT_EQ(dump.spans.size(), 3u);
  const TraceSpanSample* outer = FindSpan(dump.spans, "outer");
  const TraceSpanSample* inner = FindSpan(dump.spans, "inner");
  const TraceSpanSample* root = FindSpan(dump.spans, "root");
  ASSERT_TRUE(outer != nullptr && inner != nullptr && root != nullptr);
  EXPECT_EQ(outer->parent_id, root->span_id);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(root->parent_id, 0u);
}

TEST(TraceSpanTest, CrossThreadParentingViaExplicitContext) {
  Tracer tracer;
  TraceRequest req(&tracer, "root");
  TraceContext handoff = req.context();
  std::thread worker([&] {
    // The worker thread has no current parent; the explicit-parent form is
    // the pipeline/fetch-lane handoff.
    EXPECT_FALSE(CurrentTraceContext().active());
    ScopedSpan span(&tracer, "worker", handoff);
    span.AnnotateKV("items", 3);
  });
  worker.join();
  req.End();

  TraceDump dump = tracer.Dump();
  const TraceSpanSample* root = FindSpan(dump.spans, "root");
  const TraceSpanSample* worker_span = FindSpan(dump.spans, "worker");
  ASSERT_TRUE(root != nullptr && worker_span != nullptr);
  EXPECT_EQ(worker_span->trace_id, root->trace_id);
  EXPECT_EQ(worker_span->parent_id, root->span_id);
  EXPECT_NE(worker_span->tid, root->tid);
  EXPECT_EQ(worker_span->annot, "items=3");
}

TEST(TraceSpanTest, NullTracerAndUnsampledContextAreInert) {
  ScopedSpan off(nullptr, "never");
  EXPECT_FALSE(off.active());
  off.Annotate("ignored");

  TraceOptions opts;
  opts.sample_every_n = 0;  // never sample
  Tracer tracer(opts);
  TraceRequest req(&tracer, "root");
  EXPECT_FALSE(req.context().active());
  {
    ScopedTraceParent parent(req.context());
    ScopedSpan span(&tracer, "child");
    EXPECT_FALSE(span.active());
  }
  req.End();
  EXPECT_EQ(tracer.Dump().spans.size(), 0u);
  EXPECT_EQ(tracer.unsampled(), 1u);
}

// ---------------------------------------------------------- sampling

TEST(TraceSamplingTest, EveryNthRequestSampledDeterministically) {
  TraceOptions opts;
  opts.sample_every_n = 4;
  opts.slow_threshold_ns = 0;  // no force-sampling in this test
  Tracer tracer(opts);
  std::vector<bool> sampled;
  for (int i = 0; i < 12; ++i) {
    TraceRequest req(&tracer, "req");
    sampled.push_back(req.context().active());
    req.End();
  }
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(sampled[static_cast<size_t>(i)], i % 4 == 0) << "request " << i;
  }
  TraceDump dump = tracer.Dump();
  EXPECT_EQ(dump.spans.size(), 3u);  // requests 0, 4, 8
  EXPECT_EQ(dump.unsampled, 9u);
  EXPECT_EQ(tracer.spans_recorded(), 3u);
}

TEST(TraceSamplingTest, SlowUnsampledRequestForceRecordsRoot) {
  TraceOptions opts;
  opts.sample_every_n = 0;       // sampler never picks
  opts.slow_threshold_ns = 1;    // ...but everything is "slow"
  Tracer tracer(opts);
  TraceRequest req(&tracer, "slow_req");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  req.End();
  TraceDump dump = tracer.Dump();
  ASSERT_EQ(dump.spans.size(), 1u);
  EXPECT_EQ(dump.spans[0].name, "slow_req");
  EXPECT_EQ(dump.spans[0].annot, "force_sampled");
  ASSERT_EQ(dump.slow.size(), 1u);
  EXPECT_EQ(dump.slow[0].root, "slow_req");
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorderTest, RetainsWorstKByDurationAndCountsEvictions) {
  TraceOptions opts;
  opts.flight_recorder_k = 4;
  Tracer tracer(opts);
  // Ten requests, durations 1..10ms, offered in an order that forces both
  // eviction directions (new-beats-incumbent and incumbent-survives).
  const uint64_t kMs = 1000 * 1000;
  for (uint64_t d : {3, 9, 1, 7, 5, 10, 2, 8, 4, 6}) {
    tracer.FinishRequest(/*trace_id=*/d, "req", d * kMs, /*sampled=*/true);
  }
  TraceDump dump = tracer.Dump();
  ASSERT_EQ(dump.slow.size(), 4u);
  // Worst K = {10,9,8,7}, reported descending.
  EXPECT_EQ(dump.slow[0].dur_ns, 10 * kMs);
  EXPECT_EQ(dump.slow[1].dur_ns, 9 * kMs);
  EXPECT_EQ(dump.slow[2].dur_ns, 8 * kMs);
  EXPECT_EQ(dump.slow[3].dur_ns, 7 * kMs);
  // Every offer beyond capacity shed something, whichever side lost.
  EXPECT_EQ(dump.flight_evictions, 6u);
}

// ------------------------------------------------------ shed accounting

TEST(TraceShedTest, RingOverflowCountsDropsAndKeepsMostRecent) {
  TraceOptions opts;
  opts.ring_slots = 8;  // tiny ring: overwrites are certain
  Tracer tracer(opts);
  TraceRequest req(&tracer, "root");
  {
    ScopedTraceParent parent(req.context());
    for (int i = 0; i < 100; ++i) {
      ScopedSpan span(&tracer, "hot");
    }
  }
  req.End();
  TraceDump dump = tracer.Dump();
  EXPECT_EQ(tracer.spans_recorded(), 101u);  // 100 children + root
  EXPECT_EQ(dump.spans_dropped, 101u - 8u);
  EXPECT_EQ(dump.spans.size(), 8u);
}

TEST(TraceShedTest, ShedCountersMirrorIntoRegistry) {
  MetricRegistry registry;
  TraceOptions opts;
  opts.ring_slots = 8;
  opts.sample_every_n = 2;
  opts.slow_threshold_ns = 0;
  opts.flight_recorder_k = 1;
  opts.metrics = &registry;
  Tracer tracer(opts);
  for (int r = 0; r < 4; ++r) {
    TraceRequest req(&tracer, "req");
    ScopedTraceParent parent(req.context());
    for (int i = 0; i < 20; ++i) {
      ScopedSpan span(&tracer, "hot");
    }
    req.End();
  }
  std::vector<MetricSample> samples = registry.Snapshot();
  auto value_of = [&](const std::string& name) -> uint64_t {
    for (const MetricSample& s : samples) {
      if (s.name == name) {
        return static_cast<uint64_t>(s.value);
      }
    }
    ADD_FAILURE() << "no metric " << name;
    return 0;
  };
  EXPECT_EQ(value_of("cdstore_trace_spans_recorded_total"), tracer.spans_recorded());
  EXPECT_EQ(value_of("cdstore_trace_spans_dropped_total"), tracer.spans_dropped());
  EXPECT_EQ(value_of("cdstore_trace_unsampled_total"), 2u);
  EXPECT_EQ(value_of("cdstore_trace_flight_evictions_total"), 3u);
  EXPECT_GT(tracer.spans_dropped(), 0u);
}

// ------------------------------------------------------------- the wire

TEST(TraceWireTest, EnvelopeRoundTripsContextAndInnerFrame) {
  Bytes inner = Encode(StatsRequest{});
  TraceContextHeader ctx{0x1234abcd5678ef01ull, 42, 1};
  Bytes wire = WrapTraced(ctx, inner);
  EXPECT_EQ(PeekType(wire), MsgType::kTracedRequest);

  TraceContextHeader got;
  ConstByteSpan unwrapped;
  ASSERT_TRUE(UnwrapTraced(wire, &got, &unwrapped).ok());
  EXPECT_EQ(got.trace_id, ctx.trace_id);
  EXPECT_EQ(got.parent_span_id, ctx.parent_span_id);
  EXPECT_EQ(got.sampled, 1);
  ASSERT_EQ(unwrapped.size(), inner.size());
  EXPECT_EQ(std::memcmp(unwrapped.data(), inner.data(), inner.size()), 0);
}

TEST(TraceWireTest, TruncatedEnvelopeRejected) {
  Bytes wire = WrapTraced(TraceContextHeader{1, 2, 1}, Encode(StatsRequest{}));
  TraceContextHeader got;
  ConstByteSpan inner;
  // Header only, no inner frame.
  EXPECT_FALSE(UnwrapTraced(ConstByteSpan(wire.data(), 18), &got, &inner).ok());
  // Not an envelope at all.
  Bytes plain = Encode(StatsRequest{});
  EXPECT_FALSE(UnwrapTraced(plain, &got, &inner).ok());
}

class TracedServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions so;
    so.index_dir = dir_.Sub("server");
    so.tracer = &tracer_;
    auto server = CdstoreServer::Create(&backend_, so);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(server.value());
  }

  TempDir dir_;
  MemBackend backend_;
  Tracer tracer_;
  std::unique_ptr<CdstoreServer> server_;
};

TEST_F(TracedServerTest, FrameWithoutEnvelopeTakesPreTracingPath) {
  // Old-peer compatibility: a pre-PR-9 frame (no kTracedRequest header)
  // must decode and serve exactly as before, and record no server spans.
  Bytes plain = Encode(StatsRequest{});
  Bytes reply = server_->Handle(plain);
  StatsReply stats;
  ASSERT_TRUE(Decode(reply, &stats).ok());
  EXPECT_EQ(tracer_.Dump().spans.size(), 0u);
}

TEST_F(TracedServerTest, WireContextParentsServerSpans) {
  TraceContextHeader ctx{0xfeedull, 7, 1};
  Bytes reply = server_->Handle(WrapTraced(ctx, Encode(StatsRequest{})));
  StatsReply stats;
  ASSERT_TRUE(Decode(reply, &stats).ok());

  TraceDump dump = tracer_.Dump();
  const TraceSpanSample* serve = FindSpan(dump.spans, "serve");
  ASSERT_TRUE(serve != nullptr);
  EXPECT_EQ(serve->trace_id, ctx.trace_id);
  EXPECT_EQ(serve->parent_id, ctx.parent_span_id);
  EXPECT_EQ(serve->annot, "Stats");
  // The reply itself is unchanged by the envelope.
  Bytes plain_reply = server_->Handle(Encode(StatsRequest{}));
  EXPECT_EQ(reply.size(), plain_reply.size());
}

TEST_F(TracedServerTest, UnsampledWireContextRecordsNothing) {
  TraceContextHeader ctx{0xfeedull, 7, 0};
  Bytes reply = server_->Handle(WrapTraced(ctx, Encode(StatsRequest{})));
  StatsReply stats;
  ASSERT_TRUE(Decode(reply, &stats).ok());
  EXPECT_EQ(tracer_.Dump().spans.size(), 0u);
}

TEST_F(TracedServerTest, GetTracesRpcServesTheDump) {
  server_->Handle(WrapTraced(TraceContextHeader{0xabcull, 1, 1}, Encode(StatsRequest{})));
  Bytes reply = server_->Handle(Encode(GetTracesRequest{}));
  GetTracesReply traces;
  ASSERT_TRUE(Decode(reply, &traces).ok());
  const TraceSpanSample* serve = FindSpan(traces.spans, "serve");
  ASSERT_TRUE(serve != nullptr);
  EXPECT_EQ(serve->trace_id, 0xabcull);
  EXPECT_EQ(traces.spans_recorded, tracer_.spans_recorded());
}

// ------------------------------------------------------- Chrome export

TEST(ChromeTraceTest, GoldenJson) {
  std::vector<TraceSpanSample> spans(2);
  spans[0].trace_id = 0xabc;
  spans[0].span_id = 1;
  spans[0].parent_id = 0;
  spans[0].start_ns = 2000;
  spans[0].dur_ns = 1500;
  spans[0].tid = 7;
  spans[0].name = "upload";
  spans[1].trace_id = 0xabc;
  spans[1].span_id = 2;
  spans[1].parent_id = 1;
  spans[1].start_ns = 2500;
  spans[1].dur_ns = 250;
  spans[1].tid = 8;
  spans[1].name = "upl\"oader";  // exercises escaping
  spans[1].annot = "cloud=2 ";
  EXPECT_EQ(ChromeTraceJson(spans, /*pid=*/3),
            "{\"traceEvents\":[\n"
            "{\"ph\":\"X\",\"cat\":\"cdstore\",\"ts\":2.000,\"dur\":1.500,"
            "\"pid\":3,\"tid\":7,\"name\":\"upload\",\"args\":{"
            "\"trace_id\":\"0xabc\",\"span_id\":\"0x1\",\"parent_id\":\"0x0\","
            "\"annot\":\"\"}},\n"
            "{\"ph\":\"X\",\"cat\":\"cdstore\",\"ts\":2.500,\"dur\":0.250,"
            "\"pid\":3,\"tid\":8,\"name\":\"upl\\\"oader\",\"args\":{"
            "\"trace_id\":\"0xabc\",\"span_id\":\"0x2\",\"parent_id\":\"0x1\","
            "\"annot\":\"cloud=2 \"}}\n"
            "]}\n");
}

TEST(ChromeTraceTest, TreeViewNestsByParent) {
  std::vector<TraceSpanSample> spans(2);
  spans[0].trace_id = 1;
  spans[0].span_id = 1;
  spans[0].name = "upload";
  spans[0].dur_ns = 2000000;
  spans[1].trace_id = 1;
  spans[1].span_id = 2;
  spans[1].parent_id = 1;
  spans[1].name = "chunk";
  spans[1].dur_ns = 1000;
  std::string tree = FormatTraceTree(spans);
  EXPECT_NE(tree.find("trace 0x1 (2 spans)"), std::string::npos);
  EXPECT_NE(tree.find("  upload"), std::string::npos);
  EXPECT_NE(tree.find("    chunk"), std::string::npos);
}

// ------------------------------------------------ record vs dump (TSAN)

TEST(TraceRaceTest, ConcurrentRecordAndDump) {
  TraceOptions opts;
  opts.ring_slots = 64;  // force constant overwrites under the readers
  Tracer tracer(opts);
  std::atomic<int> live{4};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      // Fixed work per writer (not a stop flag), so the dumper below is
      // guaranteed to race against live recording however threads schedule.
      for (int i = 0; i < 2000; ++i) {
        TraceRequest req(&tracer, "req");
        ScopedTraceParent parent(req.context());
        ScopedSpan span(&tracer, "work");
        span.AnnotateKV("t", 1);
      }
      live.fetch_sub(1);
    });
  }
  while (live.load() > 0) {
    TraceDump dump = tracer.Dump();
    // A torn slot must never surface: every published span is intact.
    for (const TraceSpanSample& s : dump.spans) {
      EXPECT_TRUE(s.name == "req" || s.name == "work") << s.name;
      EXPECT_NE(s.trace_id, 0u);
    }
    EXPECT_LE(dump.spans.size(), 5u * 64u);
  }
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_EQ(tracer.spans_recorded(), 4u * 2000u * 2u);
}

// ------------------------------------------- end-to-end (the acceptance)

TEST(TraceEndToEndTest, TracedUploadYieldsOneConnectedTrace) {
  constexpr int kN = 4;
  TempDir dir;
  Tracer tracer;  // shared by the client and all four servers, as the CLI does
  std::vector<std::unique_ptr<MemBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<InProcTransport>> transports;
  std::vector<Transport*> ptrs;
  for (int i = 0; i < kN; ++i) {
    backends.push_back(std::make_unique<MemBackend>());
    ServerOptions so;
    so.index_dir = dir.Sub("server" + std::to_string(i));
    so.tracer = &tracer;
    auto server = CdstoreServer::Create(backends.back().get(), so);
    ASSERT_TRUE(server.ok()) << server.status();
    servers.push_back(std::move(server.value()));
    transports.push_back(std::make_unique<InProcTransport>(servers.back()->AsHandler()));
    ptrs.push_back(transports.back().get());
  }
  ClientOptions opts;
  opts.n = kN;
  opts.k = 3;
  opts.encode_threads = 2;
  opts.tracer = &tracer;
  CdstoreClient client(ptrs, /*user=*/1, opts);
  Bytes data = Rng(99).RandomBytes(300000);
  ASSERT_TRUE(client.Upload("/traced", data).ok());

  TraceDump dump = tracer.Dump();
  ASSERT_GT(dump.spans.size(), 0u);
  EXPECT_EQ(dump.spans_dropped, 0u);

  // One trace: every client AND server span carries the root's trace_id.
  std::set<uint64_t> trace_ids;
  std::set<uint64_t> span_ids;
  std::set<std::string> names;
  for (const TraceSpanSample& s : dump.spans) {
    trace_ids.insert(s.trace_id);
    span_ids.insert(s.span_id);
    names.insert(s.name);
  }
  EXPECT_EQ(trace_ids.size(), 1u);
  // Client pipeline stages and server-side handler spans both present.
  for (const char* expected : {"upload", "chunk", "encode_worker", "uploader", "serve",
                               "kv_commit", "store_append", "recipe_append"}) {
    EXPECT_EQ(names.count(expected), 1u) << "missing span " << expected;
  }
  // Connected: every non-root span's parent exists in the dump.
  for (const TraceSpanSample& s : dump.spans) {
    if (s.parent_id != 0) {
      EXPECT_EQ(span_ids.count(s.parent_id), 1u)
          << "orphan span " << s.name << " parent " << s.parent_id;
    }
  }
  // All four uploader lanes RPC'd under the same trace.
  size_t serves = 0;
  for (const TraceSpanSample& s : dump.spans) {
    serves += s.name == "serve" ? 1 : 0;
  }
  EXPECT_GE(serves, 4u * 3u);  // FpQuery + UploadShares + PutFile per cloud

  // And the whole thing exports as parseable Chrome JSON with every event.
  std::string json = ChromeTraceJson(dump.spans);
  size_t events = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++events;
  }
  EXPECT_EQ(events, dump.spans.size());
}

}  // namespace
}  // namespace cdstore
