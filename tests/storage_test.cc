#include <gtest/gtest.h>

#include "src/storage/backend.h"
#include "src/storage/container.h"
#include "src/storage/container_store.h"
#include "src/util/fs_util.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

// --------------------------------------------------------------- backend --

TEST(MemBackendTest, PutGetDeleteList) {
  MemBackend b;
  ASSERT_TRUE(b.Put("a", BytesOf("1")).ok());
  ASSERT_TRUE(b.Put("b", BytesOf("22")).ok());
  EXPECT_EQ(b.Get("a").value(), BytesOf("1"));
  EXPECT_TRUE(b.Exists("b"));
  EXPECT_EQ(b.object_count(), 2u);
  EXPECT_EQ(b.total_bytes(), 3u);
  ASSERT_TRUE(b.Delete("a").ok());
  EXPECT_FALSE(b.Exists("a"));
  EXPECT_EQ(b.Get("a").status().code(), StatusCode::kNotFound);
}

TEST(LocalDirBackendTest, RoundTrip) {
  TempDir dir;
  auto b = LocalDirBackend::Open(dir.Sub("objects"));
  ASSERT_TRUE(b.ok());
  Bytes data = Rng(1).RandomBytes(1000);
  ASSERT_TRUE(b.value()->Put("obj1", data).ok());
  EXPECT_EQ(b.value()->Get("obj1").value(), data);
  auto names = b.value()->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().size(), 1u);
}

// ------------------------------------------------------------- container --

TEST(ContainerTest, BuildAndParse) {
  ContainerBuilder builder;
  Rng rng(2);
  std::vector<Bytes> blobs;
  for (int i = 0; i < 10; ++i) {
    blobs.push_back(rng.RandomBytes(100 + i * 37));
    EXPECT_EQ(builder.Add(blobs.back()), static_cast<uint32_t>(i));
  }
  Bytes image = builder.Seal();
  auto reader = ContainerReader::Parse(std::move(image));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().count(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto blob = reader.value().Blob(i);
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(Bytes(blob.value().begin(), blob.value().end()), blobs[i]);
  }
}

TEST(ContainerTest, EmptyAndZeroLengthBlobs) {
  ContainerBuilder builder;
  builder.Add(Bytes{});
  builder.Add(BytesOf("x"));
  builder.Add(Bytes{});
  auto reader = ContainerReader::Parse(builder.Seal());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Blob(0).value().size(), 0u);
  EXPECT_EQ(reader.value().Blob(2).value().size(), 0u);
}

TEST(ContainerTest, CorruptionDetected) {
  ContainerBuilder builder;
  builder.Add(Rng(3).RandomBytes(500));
  Bytes image = builder.Seal();
  image[20] ^= 0x01;
  EXPECT_EQ(ContainerReader::Parse(std::move(image)).status().code(),
            StatusCode::kCorruption);
}

TEST(ContainerTest, OutOfRangeBlobRejected) {
  ContainerBuilder builder;
  builder.Add(BytesOf("only"));
  auto reader = ContainerReader::Parse(builder.Seal());
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().Blob(1).ok());
}

TEST(ContainerTest, BuilderBlobAtReadsOpenContainer) {
  ContainerBuilder builder;
  Bytes blob = Rng(4).RandomBytes(77);
  builder.Add(blob);
  auto view = builder.BlobAt(0);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(Bytes(view.value().begin(), view.value().end()), blob);
  EXPECT_FALSE(builder.BlobAt(1).ok());
}

TEST(ContainerTest, ObjectNames) {
  EXPECT_EQ(ContainerObjectName("c", 0x2a), "c000000000000002a");
  EXPECT_EQ(ContainerObjectName("r", 1), "r0000000000000001");
}

// -------------------------------------------------------- container store --

ContainerStoreOptions SmallStore() {
  ContainerStoreOptions o;
  o.container_capacity = 1024;  // tiny, to force sealing
  o.cache_bytes = 1 << 20;
  return o;
}

TEST(ContainerStoreTest, AppendAndFetchFromOpenContainer) {
  MemBackend backend;
  ContainerStore store(&backend, SmallStore());
  Bytes blob = Rng(5).RandomBytes(100);
  auto handle = store.Append(1, blob);
  ASSERT_TRUE(handle.ok());
  auto fetched = store.Fetch(handle.value());
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), blob);
}

TEST(ContainerStoreTest, SealsWhenFull) {
  MemBackend backend;
  ContainerStore store(&backend, SmallStore());
  std::vector<std::pair<BlobHandle, Bytes>> written;
  Rng rng(6);
  for (int i = 0; i < 40; ++i) {  // 40 * 200B >> 1KB capacity
    Bytes blob = rng.RandomBytes(200);
    auto handle = store.Append(1, blob);
    ASSERT_TRUE(handle.ok());
    written.push_back({handle.value(), blob});
  }
  EXPECT_GT(store.sealed_container_count(), 3u);
  EXPECT_GT(backend.object_count(), 3u);
  ASSERT_TRUE(store.FlushAll().ok());
  for (const auto& [handle, blob] : written) {
    auto fetched = store.Fetch(handle);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value(), blob);
  }
}

TEST(ContainerStoreTest, PerUserContainersAreSeparate) {
  // §4.5: each container holds only one user's data (spatial locality).
  MemBackend backend;
  ContainerStore store(&backend, SmallStore());
  auto h1 = store.Append(1, BytesOf("user1"));
  auto h2 = store.Append(2, BytesOf("user2"));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_NE(h1.value().container_id, h2.value().container_id);
}

TEST(ContainerStoreTest, OversizedBlobGetsOwnContainer) {
  // A file recipe larger than 4MB still goes into a single container
  // rather than being split (§4.5).
  MemBackend backend;
  ContainerStore store(&backend, SmallStore());
  Bytes big = Rng(7).RandomBytes(5000);  // > capacity 1024
  auto handle = store.Append(1, big);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(store.FlushAll().ok());
  auto fetched = store.Fetch(handle.value());
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), big);
}

TEST(ContainerStoreTest, FetchAfterFlushUsesBackendAndCache) {
  MemBackend backend;
  ContainerStore store(&backend, SmallStore());
  Bytes blob = Rng(8).RandomBytes(300);
  auto handle = store.Append(3, blob);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(store.FlushUser(3).ok());
  // First fetch may hit the seal-time cache; delete backend object and
  // fetch again to prove the cache serves it.
  ASSERT_TRUE(store.Fetch(handle.value()).ok());
  ASSERT_TRUE(backend.Delete(ContainerObjectName("c", handle.value().container_id)).ok());
  auto cached = store.Fetch(handle.value());
  ASSERT_TRUE(cached.ok()) << "LRU cache should serve evicted backend object";
  EXPECT_EQ(cached.value(), blob);
}

TEST(ContainerStoreTest, DeleteContainerRemovesObject) {
  MemBackend backend;
  ContainerStore store(&backend, SmallStore());
  auto handle = store.Append(1, BytesOf("data"));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(store.FlushAll().ok());
  ASSERT_TRUE(store.DeleteContainer(handle.value().container_id).ok());
  EXPECT_FALSE(backend.Exists(ContainerObjectName("c", handle.value().container_id)));
  EXPECT_FALSE(store.Fetch(handle.value()).ok());
}

TEST(ContainerStoreTest, ContainerIdsIncrease) {
  MemBackend backend;
  ContainerStore store(&backend, SmallStore(), /*first_container_id=*/100);
  auto h = store.Append(1, BytesOf("x"));
  ASSERT_TRUE(h.ok());
  EXPECT_GE(h.value().container_id, 100u);
  EXPECT_GT(store.next_container_id(), 100u);
}

}  // namespace
}  // namespace cdstore
