#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/cloud/profiles.h"
#include "src/cloud/sim_cloud.h"
#include "src/net/message.h"
#include "src/net/tcp.h"
#include "src/net/transport.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

// --------------------------------------------------------------- SimCloud --

TEST(SimCloudTest, VirtualClockChargesBandwidth) {
  MemBackend inner;
  CloudProfile p{"test", 10.0, 0.0, 5.0, 0.0, 0.0};  // 10 MB/s up, 5 down
  SimCloud cloud(&inner, p, /*virtual_time=*/true);
  Bytes data(10 * 1024 * 1024, 'x');
  ASSERT_TRUE(cloud.Put("o", data).ok());
  EXPECT_NEAR(cloud.upload_seconds(), 1.0, 0.01);
  ASSERT_TRUE(cloud.Get("o").ok());
  EXPECT_NEAR(cloud.download_seconds(), 2.0, 0.01);
  EXPECT_EQ(cloud.bytes_uploaded(), data.size());
  EXPECT_EQ(cloud.bytes_downloaded(), data.size());
}

TEST(SimCloudTest, LatencyAccumulatesPerRequest) {
  MemBackend inner;
  CloudProfile p{"test", 0.0, 0.0, 0.0, 0.0, 0.1};  // unlimited bw, 100ms RTT
  SimCloud cloud(&inner, p, true);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cloud.Put("o" + std::to_string(i), BytesOf("x")).ok());
  }
  EXPECT_NEAR(cloud.upload_seconds(), 0.5, 1e-9);
}

TEST(SimCloudTest, UnavailableCloudRejectsEverything) {
  MemBackend inner;
  SimCloud cloud(&inner, UnlimitedProfile(), true);
  ASSERT_TRUE(cloud.Put("o", BytesOf("x")).ok());
  cloud.set_available(false);
  EXPECT_EQ(cloud.Put("p", BytesOf("y")).code(), StatusCode::kUnavailable);
  EXPECT_EQ(cloud.Get("o").status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(cloud.Exists("o"));
  cloud.set_available(true);
  EXPECT_TRUE(cloud.Get("o").ok());
}

TEST(SimCloudTest, CorruptReadsFlipBytes) {
  MemBackend inner;
  SimCloud cloud(&inner, UnlimitedProfile(), true);
  Bytes data = Rng(1).RandomBytes(100);
  ASSERT_TRUE(cloud.Put("o", data).ok());
  cloud.set_corrupt_reads(true);
  auto got = cloud.Get("o");
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got.value(), data) << "corruption injection must alter content";
  // The backing object is untouched.
  EXPECT_EQ(inner.Get("o").value(), data);
}

TEST(SimCloudTest, ResetClocksZeroesAccounting) {
  MemBackend inner;
  CloudProfile p{"t", 1.0, 0.0, 1.0, 0.0, 0.0};
  SimCloud cloud(&inner, p, true);
  ASSERT_TRUE(cloud.Put("o", Bytes(1024 * 1024, 'x')).ok());
  EXPECT_GT(cloud.upload_seconds(), 0.0);
  cloud.ResetClocks();
  EXPECT_EQ(cloud.upload_seconds(), 0.0);
  EXPECT_EQ(cloud.bytes_uploaded(), 0u);
}

TEST(MultiCloudTest, BuildsNClouds) {
  MultiCloud mc(Table2CloudProfiles());
  EXPECT_EQ(mc.cloud_count(), 4);
  EXPECT_EQ(mc.cloud(0)->profile().name, "Amazon");
  EXPECT_EQ(mc.cloud(3)->profile().name, "Rackspace");
}

// --------------------------------------------------------------- messages --

TEST(MessageTest, FpQueryRoundTrip) {
  FpQueryRequest req;
  req.user = 42;
  req.fps = {FingerprintOf(BytesOf("a")), FingerprintOf(BytesOf("b"))};
  Bytes frame = Encode(req);
  EXPECT_EQ(PeekType(frame), MsgType::kFpQueryRequest);
  FpQueryRequest back;
  ASSERT_TRUE(Decode(frame, &back).ok());
  EXPECT_EQ(back.user, 42u);
  EXPECT_EQ(back.fps, req.fps);

  FpQueryReply reply;
  reply.duplicate = {1, 0};
  FpQueryReply reply_back;
  ASSERT_TRUE(Decode(Encode(reply), &reply_back).ok());
  EXPECT_EQ(reply_back.duplicate, reply.duplicate);
}

TEST(MessageTest, UploadSharesRoundTrip) {
  UploadSharesRequest req;
  req.user = 7;
  req.shares = {Rng(2).RandomBytes(100), Rng(3).RandomBytes(0), Rng(4).RandomBytes(5000)};
  UploadSharesRequest back;
  ASSERT_TRUE(Decode(Encode(req), &back).ok());
  EXPECT_EQ(back.user, 7u);
  EXPECT_EQ(back.shares, req.shares);
}

TEST(MessageTest, PutFileAndGetFileRoundTrip) {
  PutFileRequest req;
  req.user = 9;
  req.path_key = BytesOf("pathshare");
  req.file_size = 123456;
  for (int i = 0; i < 10; ++i) {
    req.recipe.push_back({FingerprintOf(Bytes{static_cast<uint8_t>(i)}),
                          static_cast<uint32_t>(8192 - i), static_cast<uint32_t>(2763)});
  }
  PutFileRequest back;
  ASSERT_TRUE(Decode(Encode(req), &back).ok());
  EXPECT_EQ(back.file_size, req.file_size);
  ASSERT_EQ(back.recipe.size(), req.recipe.size());
  EXPECT_EQ(back.recipe[3].fp, req.recipe[3].fp);
  EXPECT_EQ(back.recipe[3].secret_size, req.recipe[3].secret_size);

  GetFileReply reply;
  reply.file_size = req.file_size;
  reply.recipe = req.recipe;
  GetFileReply reply_back;
  ASSERT_TRUE(Decode(Encode(reply), &reply_back).ok());
  EXPECT_EQ(reply_back.recipe.size(), req.recipe.size());
}

TEST(MessageTest, ErrorsCarryStatus) {
  Bytes frame = EncodeError(Status::NotFound("no such file"));
  EXPECT_EQ(PeekType(frame), MsgType::kError);
  Status st = DecodeIfError(frame);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "no such file");
  // Non-error frames pass through.
  EXPECT_TRUE(DecodeIfError(Encode(StatsRequest{})).ok());
}

TEST(MessageTest, DecodeRejectsWrongType) {
  Bytes frame = Encode(StatsRequest{});
  FpQueryRequest req;
  EXPECT_FALSE(Decode(frame, &req).ok());
}

TEST(MessageTest, DecodeRejectsTruncatedFrame) {
  FpQueryRequest req;
  req.user = 1;
  req.fps = {FingerprintOf(BytesOf("x"))};
  Bytes frame = Encode(req);
  frame.resize(frame.size() / 2);
  FpQueryRequest back;
  EXPECT_FALSE(Decode(frame, &back).ok());
}

// -------------------------------------------------------------- transports --

TEST(InProcTransportTest, EchoesThroughHandler) {
  InProcTransport t([](ConstByteSpan req) {
    Bytes reply(req.begin(), req.end());
    std::reverse(reply.begin(), reply.end());
    return reply;
  });
  auto reply = t.Call(BytesOf("abc"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(StringOf(reply.value()), "cba");
  EXPECT_EQ(t.bytes_sent(), 3u);
  EXPECT_EQ(t.bytes_received(), 3u);
}

TEST(InProcTransportTest, DisconnectedFails) {
  InProcTransport t([](ConstByteSpan) { return Bytes{}; });
  t.set_connected(false);
  EXPECT_EQ(t.Call(BytesOf("x")).status().code(), StatusCode::kUnavailable);
  t.set_connected(true);
  EXPECT_TRUE(t.Call(BytesOf("x")).ok());
}

TEST(InProcTransportTest, DisconnectDuringCallFails) {
  // A disconnect while the server is handling the request (the cloud VM
  // vanished mid-call) must fail the call — never return a reply whose
  // downlink was skipped.
  InProcTransport* self = nullptr;
  bool drop_once = true;
  InProcTransport t([&](ConstByteSpan req) {
    if (drop_once) {
      drop_once = false;
      self->set_connected(false);
    }
    return Bytes(req.begin(), req.end());
  });
  self = &t;
  auto reply = t.Call(BytesOf("abc"));
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(t.bytes_sent(), 3u);      // the request did go out
  EXPECT_EQ(t.bytes_received(), 0u);  // the reply never made it back
  t.set_connected(true);
  EXPECT_TRUE(t.Call(BytesOf("abc")).ok());
}

TEST(InProcTransportTest, ChargesLinkBandwidth) {
  RateLimiter up(1024 * 1024);    // 1 MB/s
  RateLimiter down(2 * 1024 * 1024);
  up.set_simulated(true);
  down.set_simulated(true);
  InProcTransport t([](ConstByteSpan) { return Bytes(2 * 1024 * 1024, 'r'); }, &up, &down);
  ASSERT_TRUE(t.Call(Bytes(1024 * 1024, 'q')).ok());
  EXPECT_NEAR(up.simulated_seconds(), 1.0, 0.01);
  EXPECT_NEAR(down.simulated_seconds(), 1.0, 0.01);
}

TEST(TcpTest, RequestReplyOverLoopback) {
  auto server = TcpServer::Listen(0, [](ConstByteSpan req) {
    Bytes reply = BytesOf("pong:");
    reply.insert(reply.end(), req.begin(), req.end());
    return reply;
  });
  ASSERT_TRUE(server.ok());
  auto client = TcpTransport::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value()->Call(BytesOf("ping"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(StringOf(reply.value()), "pong:ping");
}

TEST(TcpTest, MultipleSequentialCalls) {
  auto server = TcpServer::Listen(0, [](ConstByteSpan req) {
    return Bytes(req.begin(), req.end());
  });
  ASSERT_TRUE(server.ok());
  auto client = TcpTransport::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    Bytes payload = rng.RandomBytes(1 + rng.Uniform(50000));
    auto reply = client.value()->Call(payload);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value(), payload);
  }
}

TEST(TcpTest, MultipleConcurrentClients) {
  auto server = TcpServer::Listen(0, [](ConstByteSpan req) {
    return Bytes(req.begin(), req.end());
  });
  ASSERT_TRUE(server.ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c]() {
      auto client = TcpTransport::Connect("127.0.0.1", server.value()->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      Rng rng(c);
      for (int i = 0; i < 10; ++i) {
        Bytes payload = rng.RandomBytes(1000);
        auto reply = client.value()->Call(payload);
        if (!reply.ok() || reply.value() != payload) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  auto client = TcpTransport::Connect("127.0.0.1", 1);  // port 1: closed
  EXPECT_FALSE(client.ok());
}

// ------------------------------------------------------- per-RPC deadlines --

TEST(TcpTest, RpcDeadlineTripsOnSilentServer) {
  // The handler accepts the request and then sits on the reply — the cloud
  // that takes the bytes and never answers. The per-RPC deadline frees the
  // caller in ~200ms as a retryable timeout instead of pinning its thread
  // for the duration.
  auto server = TcpServer::Listen(0, [](ConstByteSpan req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    return Bytes(req.begin(), req.end());
  });
  ASSERT_TRUE(server.ok());
  TcpTransportOptions opts;
  opts.rpc_deadline_ms = 200;
  auto client = TcpTransport::Connect("127.0.0.1", server.value()->port(), opts);
  ASSERT_TRUE(client.ok());

  auto start = std::chrono::steady_clock::now();
  auto reply = client.value()->Call(BytesOf("ping"));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 2000);

  // The stream is desynchronized after a timeout; the connection is dead
  // and later calls fail fast instead of reading the stale reply.
  auto second = client.value()->Call(BytesOf("ping"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  server.value()->Stop();
}

TEST(TcpTest, CallsInsideDeadlineUnaffected) {
  auto server = TcpServer::Listen(0, [](ConstByteSpan req) {
    return Bytes(req.begin(), req.end());
  });
  ASSERT_TRUE(server.ok());
  TcpTransportOptions opts;
  opts.rpc_deadline_ms = 5000;
  auto client = TcpTransport::Connect("127.0.0.1", server.value()->port(), opts);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 10; ++i) {
    auto reply = client.value()->Call(BytesOf("m" + std::to_string(i)));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value(), BytesOf("m" + std::to_string(i)));
  }
}

TEST(InProcTransportTest, StalledReplyTripsDeadline) {
  InProcTransport t([](ConstByteSpan req) { return Bytes(req.begin(), req.end()); });
  t.set_rpc_deadline_ms(50);
  t.set_stall_ms(10000);
  auto start = std::chrono::steady_clock::now();
  auto reply = t.Call(BytesOf("x"));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 2000);  // slept the deadline, never the 10s stall
  EXPECT_EQ(t.deadline_trips(), 1u);

  // A stall shorter than the deadline only delays the reply.
  t.set_stall_ms(10);
  EXPECT_EQ(t.Call(BytesOf("y")).value(), BytesOf("y"));
}

// --------------------------------------------- SimCloud on the fault plan --

TEST(SimCloudTest, FaultPlanDrivesInjectedErrors) {
  MemBackend inner;
  SimCloud cloud(&inner, UnlimitedProfile(), true);
  ASSERT_TRUE(cloud.Put("o", BytesOf("v")).ok());

  cloud.plan()->ForceNext(FaultKind::kError, 2);
  EXPECT_EQ(cloud.Get("o").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(cloud.Put("p", BytesOf("w")).code(), StatusCode::kUnavailable);
  EXPECT_EQ(cloud.Get("o").value(), BytesOf("v"));  // schedule drained
  EXPECT_GE(cloud.plan()->faults_injected(), 2u);
}

TEST(SimCloudTest, FaultPlanStallChargesVirtualClock) {
  MemBackend inner;
  SimCloud cloud(&inner, UnlimitedProfile(), /*virtual_time=*/true);
  ASSERT_TRUE(cloud.Put("o", BytesOf("v")).ok());
  double before = cloud.download_seconds();
  FaultSpec spec = cloud.plan()->spec();
  spec.stall_ms = 250;
  cloud.plan()->set_spec(spec);
  cloud.plan()->ForceNext(FaultKind::kStall, 1);
  ASSERT_TRUE(cloud.Get("o").ok());  // stalled, not failed
  EXPECT_NEAR(cloud.download_seconds() - before, 0.25, 1e-9);
}

TEST(SimCloudTest, SharedFaultSpecMatchesHttpSchedule) {
  // One FaultSpec, two consumers: SimCloud and FaultyHttpServer tests can
  // describe "this cloud misbehaves" identically because both draw the
  // same pure (seed, index) schedule.
  FaultSpec spec;
  spec.error_rate = 0.3;
  spec.seed = 99;
  MemBackend inner;
  SimCloud cloud(&inner, UnlimitedProfile(), true);
  cloud.plan()->set_spec(spec);
  FaultPlan reference(spec);
  ASSERT_TRUE(inner.Put("o", BytesOf("v")).ok());
  for (int i = 0; i < 50; ++i) {
    bool should_fail = reference.Next() == FaultKind::kError;
    EXPECT_EQ(cloud.Get("o").ok(), !should_fail) << i;
  }
}

}  // namespace
}  // namespace cdstore
