// Randomized property tests for the dispersal layer: random k-subsets in
// random order, share-loss patterns at the reliability boundary, and
// cross-scheme share-size uniformity.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/dispersal/aont_rs.h"
#include "src/dispersal/registry.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

class RandomSubsetTest : public ::testing::TestWithParam<SchemeType> {};

TEST_P(RandomSubsetTest, RandomKSubsetsInRandomOrderDecode) {
  const int n = 10, k = 6;
  SchemeParams p{.n = n, .k = k, .r = 2, .salt = {}};
  auto made = MakeScheme(GetParam(), p);
  ASSERT_TRUE(made.ok());
  SecretSharing& scheme = *made.value();
  Rng rng(0xD15);

  for (int trial = 0; trial < 20; ++trial) {
    size_t size = 1 + rng.Uniform(20000);
    Bytes secret = rng.RandomBytes(size);
    std::vector<Bytes> shares;
    ASSERT_TRUE(scheme.Encode(secret, &shares).ok());

    // Random subset of exactly k, in random order.
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (int i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.Uniform(i + 1)]);
    }
    std::vector<int> ids(perm.begin(), perm.begin() + k);
    std::vector<Bytes> subset;
    for (int id : ids) {
      subset.push_back(shares[id]);
    }
    Bytes back;
    ASSERT_TRUE(scheme.Decode(ids, subset, size, &back).ok())
        << scheme.name() << " trial " << trial;
    EXPECT_EQ(back, secret) << scheme.name() << " trial " << trial;
  }
}

TEST_P(RandomSubsetTest, MoreThanKSharesAlsoDecode) {
  const int n = 7, k = 4;
  SchemeParams p{.n = n, .k = k, .r = 1, .salt = {}};
  auto made = MakeScheme(GetParam(), p);
  ASSERT_TRUE(made.ok());
  SecretSharing& scheme = *made.value();
  Rng rng(0xD16);
  Bytes secret = rng.RandomBytes(5000);
  std::vector<Bytes> shares;
  ASSERT_TRUE(scheme.Encode(secret, &shares).ok());
  // All n shares at once.
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  Bytes back;
  ASSERT_TRUE(scheme.Decode(ids, shares, secret.size(), &back).ok());
  EXPECT_EQ(back, secret);
}

TEST_P(RandomSubsetTest, SharesAreUniformlySized) {
  SchemeParams p{.n = 5, .k = 3, .r = 1, .salt = {}};
  auto made = MakeScheme(GetParam(), p);
  ASSERT_TRUE(made.ok());
  Rng rng(0xD17);
  for (size_t size : {1ul, 100ul, 8191ul, 8192ul, 8193ul}) {
    Bytes secret = rng.RandomBytes(size);
    std::vector<Bytes> shares;
    ASSERT_TRUE(made.value()->Encode(secret, &shares).ok());
    for (const Bytes& s : shares) {
      EXPECT_EQ(s.size(), shares[0].size()) << "unequal shares at size " << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RandomSubsetTest, ::testing::ValuesIn(AllSchemeTypes()),
                         [](const ::testing::TestParamInfo<SchemeType>& info) {
                           std::string name = SchemeTypeName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ReliabilityBoundaryTest, ExactlyKSharesSuffice) {
  // Convergent dispersal keeps working right at the failure boundary:
  // losing n-k shares is fine; n-k+1 is not.
  for (auto [n, k] : {std::pair{4, 3}, std::pair{6, 3}, std::pair{9, 5}}) {
    SchemeParams p{.n = n, .k = k, .r = k - 1, .salt = {}};
    auto scheme = std::move(MakeScheme(SchemeType::kCaontRs, p).value());
    Rng rng(n * 100 + k);
    Bytes secret = rng.RandomBytes(10000);
    std::vector<Bytes> shares;
    ASSERT_TRUE(scheme->Encode(secret, &shares).ok());

    // Lose the last n-k: decode from the first k.
    std::vector<int> ids(k);
    std::iota(ids.begin(), ids.end(), 0);
    std::vector<Bytes> subset(shares.begin(), shares.begin() + k);
    Bytes back;
    ASSERT_TRUE(scheme->Decode(ids, subset, secret.size(), &back).ok());
    EXPECT_EQ(back, secret);

    // k-1 shares must be rejected outright.
    ids.pop_back();
    subset.pop_back();
    EXPECT_FALSE(scheme->Decode(ids, subset, secret.size(), &back).ok())
        << "decode must refuse fewer than k shares";
  }
}

TEST(ConfidentialityTest, SharesLookRandomForHighEntropySecrets) {
  // A weak but useful distinguisher: CAONT-RS shares of a random secret
  // should have near-uniform byte histograms (no plaintext structure).
  auto scheme = MakeCaontRs(4, 3);
  Rng rng(0xC0);
  Bytes secret = rng.RandomBytes(1 << 16);
  std::vector<Bytes> shares;
  ASSERT_TRUE(scheme->Encode(secret, &shares).ok());
  for (const Bytes& share : shares) {
    double counts[256] = {0};
    for (uint8_t b : share) {
      counts[b] += 1;
    }
    double expected = static_cast<double>(share.size()) / 256.0;
    double chi2 = 0;
    for (double c : counts) {
      chi2 += (c - expected) * (c - expected) / expected;
    }
    // 255 dof: mean 255, stddev ~22.6; 400 is a ~6-sigma bound.
    EXPECT_LT(chi2, 400.0);
  }
}

TEST(ConfidentialityTest, SharesOfStructuredSecretsAreStillRandom) {
  // All-zero secrets are the worst case for leaking structure.
  auto scheme = MakeCaontRs(4, 3);
  Bytes secret(1 << 16, 0);
  std::vector<Bytes> shares;
  ASSERT_TRUE(scheme->Encode(secret, &shares).ok());
  for (const Bytes& share : shares) {
    // No long zero runs should survive the AONT.
    size_t longest_zero_run = 0, run = 0;
    for (uint8_t b : share) {
      run = (b == 0) ? run + 1 : 0;
      longest_zero_run = std::max(longest_zero_run, run);
    }
    EXPECT_LT(longest_zero_run, 16u);
  }
}

}  // namespace
}  // namespace cdstore
