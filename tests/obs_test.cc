// Tests of the observability subsystem (src/obs/): counter/gauge
// exactness, histogram bucket semantics (le-inclusive, +Inf overflow) and
// quantile interpolation, cross-shard merge correctness under concurrent
// recording (the TSAN target for the lock-free record path), golden
// Prometheus text output, the GetMetrics wire roundtrip, the GET /metrics
// HTTP endpoint, and the instrumentation hooks the rest of the system
// feeds: server Dispatch histograms, queue occupancy/backpressure, retry
// counters, and fault-injection counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/server.h"
#include "src/net/http.h"
#include "src/net/message.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_http.h"
#include "src/storage/backend.h"
#include "src/util/bounded_queue.h"
#include "src/util/fault_plan.h"
#include "src/util/fs_util.h"
#include "src/util/retry.h"

namespace cdstore {
namespace {

// ------------------------------------------------------------- instruments

TEST(CounterTest, IncAndValueAreExact) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(5);
  c.Inc(0);
  EXPECT_EQ(c.Value(), 6u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
}

TEST(HistogramTest, BucketBoundsAreInclusiveUpperEdges) {
  // Prometheus `le` semantics: a value equal to a bound lands in that
  // bound's bucket, one past it in the next.
  Histogram h({10, 20});
  h.Observe(0);    // bucket 0 (le=10)
  h.Observe(10);   // bucket 0, on the edge
  h.Observe(11);   // bucket 1 (le=20)
  h.Observe(20);   // bucket 1, on the edge
  h.Observe(21);   // +Inf bucket
  h.Observe(1000); // +Inf bucket
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0u + 10 + 11 + 20 + 21 + 1000);
}

TEST(HistogramTest, EmptyBoundsYieldCountSumOnly) {
  Histogram h({});
  h.Observe(3);
  h.Observe(4);
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 1u);  // just the +Inf bucket
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 7u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 3.5);
}

TEST(HistogramTest, QuantileInterpolatesInsideBucket) {
  Histogram h({100});
  for (int i = 0; i < 100; ++i) {
    h.Observe(50);
  }
  HistogramSnapshot snap = h.Snapshot();
  // All mass in [0, 100]: the median interpolates to the bucket midpoint.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.0);
  // Out-of-range q is clamped.
  EXPECT_DOUBLE_EQ(snap.Quantile(2.0), snap.Quantile(1.0));
}

TEST(HistogramTest, QuantileClampsInfBucketToLargestBound) {
  Histogram h({100});
  h.Observe(5000);  // +Inf bucket only
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 100.0);
}

TEST(HistogramTest, EmptySnapshotQuantileIsZero) {
  Histogram h({10});
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Mean(), 0.0);
}

TEST(BucketLaddersTest, ExponentialBucketsStrictlyIncrease) {
  std::vector<uint64_t> b = ExponentialBuckets(1, 1.1, 40);
  ASSERT_EQ(b.size(), 40u);
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_LT(b[i - 1], b[i]) << "at index " << i;
  }
  EXPECT_EQ(LatencyBucketsNs().size(), 31u);
  EXPECT_EQ(LatencyBucketsNs().front(), 1000u);
  EXPECT_EQ(SizeBuckets().front(), 64u);
}

// ----------------------------------------------------- concurrent recording

// The TSAN target: many threads hammer one counter and one histogram
// through the sharded lock-free record path while a reader merges
// snapshots; totals must come out exact.
TEST(ObsConcurrencyTest, CrossShardMergeIsExactUnderConcurrentRecording) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter counter;
  Histogram hist({100, 1000});
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)counter.Value();
      (void)hist.Snapshot();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Inc();
        hist.Observe(static_cast<uint64_t>((t * kPerThread + i) % 2000));
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  stop = true;
  reader.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t expected_sum = 0;
  for (int v = 0; v < kThreads * kPerThread; ++v) {
    expected_sum += static_cast<uint64_t>(v % 2000);
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(ObsConcurrencyTest, RegistryGetRacesResolveToOneSeries) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Counter* c = registry.GetCounter("race_total", {{"k", "v"}});
      c->Inc();
      seen[t] = c;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]) << "every racer must get the same instrument";
  }
  EXPECT_EQ(seen[0]->Value(), static_cast<uint64_t>(kThreads));
}

// ----------------------------------------------------------------- registry

TEST(MetricRegistryTest, SameNameAndLabelsShareOneInstrument) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x_total", {{"cloud", "1"}});
  Counter* b = registry.GetCounter("x_total", {{"cloud", "1"}});
  Counter* other = registry.GetCounter("x_total", {{"cloud", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(MetricRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricRegistry registry;
  Gauge* a = registry.GetGauge("g", {{"a", "1"}, {"b", "2"}});
  Gauge* b = registry.GetGauge("g", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
}

TEST(MetricRegistryTest, HistogramBoundsFixedByFirstRegistration) {
  MetricRegistry registry;
  Histogram* a = registry.GetHistogram("h", {}, {1, 2, 3});
  Histogram* b = registry.GetHistogram("h", {}, {9});
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->bounds().size(), 3u);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndTyped) {
  MetricRegistry registry;
  registry.GetCounter("z_total")->Inc(3);
  registry.GetGauge("a_depth")->Set(-4);
  registry.GetHistogram("m_lat", {}, {10})->Observe(7);
  std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_depth");
  EXPECT_EQ(samples[0].kind, MetricSample::kGauge);
  EXPECT_EQ(samples[0].value, -4);
  EXPECT_EQ(samples[1].name, "m_lat");
  EXPECT_EQ(samples[1].kind, MetricSample::kHistogram);
  EXPECT_EQ(samples[1].count, 1u);
  EXPECT_EQ(samples[1].sum, 7u);
  ASSERT_EQ(samples[1].bucket_counts.size(), 2u);
  EXPECT_EQ(samples[1].bucket_counts[0], 1u);
  EXPECT_EQ(samples[2].name, "z_total");
  EXPECT_EQ(samples[2].kind, MetricSample::kCounter);
  EXPECT_EQ(samples[2].value, 3);
}

// ------------------------------------------------------------- text format

TEST(PrometheusTextTest, GoldenOutput) {
  MetricRegistry registry;
  registry.GetCounter("t_requests_total", {{"cloud", "1"}})->Inc(2);
  registry.GetGauge("t_depth")->Set(5);
  Histogram* h = registry.GetHistogram("t_lat", {{"rpc", "Stats"}}, {10, 20});
  h->Observe(5);
  h->Observe(15);
  h->Observe(100);
  const char* golden =
      "# TYPE t_depth gauge\n"
      "t_depth 5\n"
      "# TYPE t_lat histogram\n"
      "t_lat_bucket{rpc=\"Stats\",le=\"10\"} 1\n"
      "t_lat_bucket{rpc=\"Stats\",le=\"20\"} 2\n"
      "t_lat_bucket{rpc=\"Stats\",le=\"+Inf\"} 3\n"
      "t_lat_sum{rpc=\"Stats\"} 120\n"
      "t_lat_count{rpc=\"Stats\"} 3\n"
      "# TYPE t_requests_total counter\n"
      "t_requests_total{cloud=\"1\"} 2\n";
  EXPECT_EQ(registry.PrometheusText(), golden);
}

TEST(PrometheusTextTest, LabelValuesAreEscaped) {
  MetricRegistry registry;
  registry.GetCounter("e_total", {{"path", "a\"b\\c\nd"}})->Inc();
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("e_total{path=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos) << text;
}

// ------------------------------------------------------------ wire roundtrip

TEST(GetMetricsWireTest, ReplyRoundtripsAllSampleFields) {
  MetricRegistry registry;
  registry.GetCounter("w_total", {{"user", "7"}})->Inc(9);
  registry.GetGauge("w_depth")->Set(-3);
  Histogram* h = registry.GetHistogram("w_lat", {}, {100, 200});
  h->Observe(50);
  h->Observe(500);
  GetMetricsReply reply;
  reply.samples = registry.Snapshot();

  GetMetricsReply decoded;
  ASSERT_TRUE(Decode(Encode(reply), &decoded).ok());
  ASSERT_EQ(decoded.samples.size(), reply.samples.size());
  for (size_t i = 0; i < reply.samples.size(); ++i) {
    const MetricSample& a = reply.samples[i];
    const MetricSample& b = decoded.samples[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.bounds, b.bounds);
    EXPECT_EQ(a.bucket_counts, b.bucket_counts);
  }
}

// ------------------------------------------------------- server end to end

TEST(ServerMetricsTest, DispatchRecordsAndGetMetricsServesOverTheWire) {
  TempDir dir;
  MemBackend backend;
  MetricRegistry registry;
  ServerOptions so;
  so.index_dir = dir.Sub("server");
  so.metrics = &registry;
  auto server = CdstoreServer::Create(&backend, so);
  ASSERT_TRUE(server.ok()) << server.status();
  InProcTransport transport(server.value().get());

  auto stats_frame = transport.Call(Encode(StatsRequest{}));
  ASSERT_TRUE(stats_frame.ok());

  // Scrape through the same RPC surface a remote operator would use.
  auto frame = transport.Call(Encode(GetMetricsRequest{}));
  ASSERT_TRUE(frame.ok());
  GetMetricsReply reply;
  ASSERT_TRUE(Decode(frame.value(), &reply).ok());
  bool found_stats_latency = false;
  for (const MetricSample& s : reply.samples) {
    if (s.name == "cdstore_server_rpc_latency_ns" &&
        s.labels == MetricLabels{{"rpc", "Stats"}}) {
      found_stats_latency = true;
      EXPECT_EQ(s.kind, MetricSample::kHistogram);
      EXPECT_EQ(s.count, 1u);
    }
  }
  EXPECT_TRUE(found_stats_latency)
      << "Dispatch must have recorded the Stats RPC before the scrape";
}

TEST(ServerMetricsTest, MetricsOffServesEmptyReply) {
  TempDir dir;
  MemBackend backend;
  ServerOptions so;
  so.index_dir = dir.Sub("server");
  auto server = CdstoreServer::Create(&backend, so);
  ASSERT_TRUE(server.ok()) << server.status();
  InProcTransport transport(server.value().get());
  auto frame = transport.Call(Encode(GetMetricsRequest{}));
  ASSERT_TRUE(frame.ok());
  GetMetricsReply reply;
  ASSERT_TRUE(Decode(frame.value(), &reply).ok());
  EXPECT_TRUE(reply.samples.empty());
}

// -------------------------------------------------------------- GET /metrics

TEST(MetricsHttpTest, ServesPrometheusTextAnd404) {
  MetricRegistry registry;
  registry.GetCounter("http_served_total", {{"cloud", "0"}})->Inc(4);
  auto server = MetricsHttpServer::Start(&registry, 0);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_GT(server.value()->port(), 0);

  HttpClient client("127.0.0.1", server.value()->port());
  auto resp = client.Do("GET", "/metrics", {}, 5000);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp.value().status, 200);
  std::string body(resp.value().body.begin(), resp.value().body.end());
  EXPECT_NE(body.find("# TYPE http_served_total counter"), std::string::npos) << body;
  EXPECT_NE(body.find("http_served_total{cloud=\"0\"} 4"), std::string::npos) << body;

  auto other = client.Do("GET", "/other", {}, 5000);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_EQ(other.value().status, 404);

  // A later scrape sees later recording — the registry is read per request.
  registry.GetCounter("http_served_total", {{"cloud", "0"}})->Inc();
  auto again = client.Do("GET", "/metrics", {}, 5000);
  ASSERT_TRUE(again.ok()) << again.status();
  std::string body2(again.value().body.begin(), again.value().body.end());
  EXPECT_NE(body2.find("http_served_total{cloud=\"0\"} 5"), std::string::npos) << body2;

  server.value()->Stop();
  server.value()->Stop();  // idempotent
}

// --------------------------------------------------------------- scoped timer

TEST(ScopedTimerTest, ObservesElapsedOnDestructionAndIsNullSafe) {
  Histogram h(LatencyBucketsNs());
  {
    ScopedTimer timer(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 1000000u) << "at least the 2ms slept, in ns";
  { ScopedTimer noop(nullptr); }  // must not crash
  EXPECT_EQ(h.Snapshot().count, 1u);
}

// ------------------------------------------------------- instrumentation hooks

TEST(QueueMetricsTest, BoundedQueueTracksOccupancyAndStalls) {
  MetricRegistry registry;
  Gauge* occupancy = registry.GetGauge("q_occupancy");
  Counter* stalls = registry.GetCounter("q_stalls_total");
  BoundedQueue<int> q(1);
  q.BindMetrics(occupancy, stalls);
  ASSERT_TRUE(q.Push(1));
  EXPECT_EQ(occupancy->Value(), 1);
  EXPECT_EQ(stalls->Value(), 0u);
  std::thread consumer([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(q.Pop(), 1);
  });
  ASSERT_TRUE(q.Push(2));  // full: must count one backpressure stall
  consumer.join();
  EXPECT_EQ(stalls->Value(), 1u);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(occupancy->Value(), 0);
}

TEST(QueueMetricsTest, BroadcastQueueOccupancyFollowsSlowestConsumer) {
  MetricRegistry registry;
  Gauge* occupancy = registry.GetGauge("b_occupancy");
  Counter* stalls = registry.GetCounter("b_stalls_total");
  BroadcastQueue<int> q(/*capacity=*/4, /*num_consumers=*/2);
  q.BindMetrics(occupancy, stalls);
  ASSERT_TRUE(q.Push(10));
  ASSERT_TRUE(q.Push(11));
  EXPECT_EQ(occupancy->Value(), 2);
  // One consumer advances; the window still holds both items for the other.
  ASSERT_NE(q.Peek(0), nullptr);
  q.Advance(0);
  EXPECT_EQ(occupancy->Value(), 2) << "slowest consumer pins the window";
  ASSERT_NE(q.Peek(1), nullptr);
  q.Advance(1);
  EXPECT_EQ(occupancy->Value(), 1);
  EXPECT_EQ(stalls->Value(), 0u);
}

TEST(RetryMetricsTest, CountersFeedTheRegistry) {
  MetricRegistry registry;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 8;
  policy.max_backoff_ms = 8;
  policy.jitter = 0.0;
  policy.attempt_deadline_ms = 0;
  policy.overall_deadline_ms = 0;
  policy.metrics = MakeRetryMetrics(&registry, "cloud0");
  uint64_t now = 0;
  Retrier retrier(policy, /*sleep=*/[&](uint64_t ms) { now += ms; },
                  /*now_ms=*/[&]() { return now; });
  EXPECT_TRUE(retrier.BackoffOrGiveUp(Status::Unavailable("503")));
  EXPECT_TRUE(retrier.BackoffOrGiveUp(Status::DeadlineExceeded("stall")));
  EXPECT_FALSE(retrier.BackoffOrGiveUp(Status::Unavailable("503")))
      << "budget of 3 attempts spent";

  auto value = [&](const char* name) {
    return registry.GetCounter(name, {{"scope", "cloud0"}})->Value();
  };
  EXPECT_EQ(value("cdstore_retry_attempts_total"), 3u);
  EXPECT_EQ(value("cdstore_retry_backoff_ms_total"), 16u) << "two 8ms sleeps, no jitter";
  EXPECT_EQ(value("cdstore_retry_deadline_trips_total"), 1u);
  EXPECT_EQ(value("cdstore_retry_giveups_total"), 1u);
}

TEST(FaultPlanMetricsTest, InjectedFaultsMirrorIntoBoundCounter) {
  MetricRegistry registry;
  Counter* injected = registry.GetCounter("cdstore_fault_injected_total", {{"cloud", "2"}});
  FaultPlan plan;
  plan.BindMetrics(injected);
  plan.ForceNext(FaultKind::kStall, 2);
  EXPECT_EQ(plan.Next(), FaultKind::kStall);
  EXPECT_EQ(plan.Next(), FaultKind::kStall);
  EXPECT_EQ(plan.Next(), FaultKind::kNone) << "fault-free schedule after forced faults";
  EXPECT_EQ(injected->Value(), 2u);
  EXPECT_EQ(plan.faults_injected(), 2u) << "ad-hoc counter stays in lockstep";
}

// ------------------------------------------------------------- running stats

TEST(RunningStatsTest, UnifiedAccumulatorMatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.stddev(), 2.5819888974716116, 1e-12);  // sqrt(20/3)
}

}  // namespace
}  // namespace cdstore
