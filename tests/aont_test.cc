#include <gtest/gtest.h>

#include "src/aont/oaep_aont.h"
#include "src/aont/rivest_aont.h"
#include "src/crypto/sha256.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

// ------------------------------------------------------------- OAEP AONT --

TEST(OaepAontTest, RoundTripVariousSizes) {
  Rng rng(1);
  Bytes key = rng.RandomBytes(kAontKeySize);
  for (size_t size : {0ul, 1ul, 15ul, 16ul, 17ul, 1000ul, 8192ul}) {
    Bytes x = rng.RandomBytes(size);
    Bytes pkg = OaepAontTransform(x, key);
    EXPECT_EQ(pkg.size(), size + kOaepAontOverhead);
    Bytes back, key_back;
    ASSERT_TRUE(OaepAontInverse(pkg, &back, &key_back).ok()) << "size=" << size;
    EXPECT_EQ(back, x);
    EXPECT_EQ(key_back, key);
  }
}

TEST(OaepAontTest, DeterministicForSameKey) {
  Rng rng(2);
  Bytes key = rng.RandomBytes(kAontKeySize);
  Bytes x = rng.RandomBytes(500);
  EXPECT_EQ(OaepAontTransform(x, key), OaepAontTransform(x, key));
}

TEST(OaepAontTest, DifferentKeysGiveDifferentPackages) {
  Rng rng(3);
  Bytes x = rng.RandomBytes(100);
  Bytes k1 = rng.RandomBytes(kAontKeySize);
  Bytes k2 = rng.RandomBytes(kAontKeySize);
  EXPECT_NE(OaepAontTransform(x, k1), OaepAontTransform(x, k2));
}

TEST(OaepAontTest, AvalancheOnSingleBitFlip) {
  // All-or-nothing: flipping one input bit must rewrite ~half the package
  // head (Y part), because the convergent key changes completely.
  Rng rng(4);
  Bytes x = rng.RandomBytes(1024);
  Bytes key1 = Sha256::Hash(x);
  Bytes pkg1 = OaepAontTransform(x, key1);
  x[500] ^= 0x01;
  Bytes key2 = Sha256::Hash(x);
  Bytes pkg2 = OaepAontTransform(x, key2);
  int differing_bytes = 0;
  for (size_t i = 0; i < pkg1.size(); ++i) {
    if (pkg1[i] != pkg2[i]) ++differing_bytes;
  }
  // Expect nearly all bytes to differ (well above 90%).
  EXPECT_GT(differing_bytes, static_cast<int>(pkg1.size() * 9 / 10));
}

TEST(OaepAontTest, TruncatedPackageRejected) {
  Bytes x, key;
  EXPECT_FALSE(OaepAontInverse(Bytes(kOaepAontOverhead - 1, 0), &x, &key).ok());
}

TEST(OaepAontTest, TamperedPackageYieldsDifferentSecret) {
  // OAEP AONT itself has no integrity tag: tampering silently changes the
  // output. (The convergent layer adds the hash check.)
  Rng rng(5);
  Bytes key = rng.RandomBytes(kAontKeySize);
  Bytes x = rng.RandomBytes(64);
  Bytes pkg = OaepAontTransform(x, key);
  pkg[10] ^= 0xff;
  Bytes back;
  ASSERT_TRUE(OaepAontInverse(pkg, &back, nullptr).ok());
  EXPECT_NE(back, x);
}

// ----------------------------------------------------------- Rivest AONT --

TEST(RivestAontTest, RoundTripWordAlignedSizes) {
  Rng rng(6);
  Bytes key = rng.RandomBytes(kRivestKeySize);
  for (size_t words : {0ul, 1ul, 2ul, 64ul, 512ul}) {
    Bytes x = rng.RandomBytes(words * kRivestWordSize);
    Bytes pkg = RivestAontTransform(x, key);
    EXPECT_EQ(pkg.size(), x.size() + kRivestAontOverhead);
    Bytes back, key_back;
    ASSERT_TRUE(RivestAontInverse(pkg, &back, &key_back).ok());
    EXPECT_EQ(back, x);
    EXPECT_EQ(key_back, key);
  }
}

TEST(RivestAontTest, CanaryDetectsTamperedDataWord) {
  Rng rng(7);
  Bytes key = rng.RandomBytes(kRivestKeySize);
  Bytes x = rng.RandomBytes(160);
  Bytes pkg = RivestAontTransform(x, key);
  // Tampering any masked word changes H(c_1..), hence K, hence the canary.
  pkg[3] ^= 0x80;
  Bytes back;
  EXPECT_EQ(RivestAontInverse(pkg, &back, nullptr).code(), StatusCode::kCorruption);
}

TEST(RivestAontTest, CanaryDetectsTamperedTail) {
  Rng rng(8);
  Bytes key = rng.RandomBytes(kRivestKeySize);
  Bytes x = rng.RandomBytes(32);
  Bytes pkg = RivestAontTransform(x, key);
  pkg[pkg.size() - 1] ^= 0x01;
  Bytes back;
  EXPECT_EQ(RivestAontInverse(pkg, &back, nullptr).code(), StatusCode::kCorruption);
}

TEST(RivestAontTest, BadPackageSizeRejected) {
  Bytes x;
  // Not word-aligned after removing overhead.
  EXPECT_FALSE(RivestAontInverse(Bytes(kRivestAontOverhead + 5, 0), &x, nullptr).ok());
  // Shorter than overhead.
  EXPECT_FALSE(RivestAontInverse(Bytes(10, 0), &x, nullptr).ok());
}

TEST(RivestAontTest, DeterministicForSameKey) {
  Rng rng(9);
  Bytes key = rng.RandomBytes(kRivestKeySize);
  Bytes x = rng.RandomBytes(320);
  EXPECT_EQ(RivestAontTransform(x, key), RivestAontTransform(x, key));
}

}  // namespace
}  // namespace cdstore
