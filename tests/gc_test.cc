// Tests for the §4.7 future-work features realized in this reproduction:
// garbage collection of orphaned shares and index snapshot backup/restore.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/util/fs_util.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

class GcTest : public ::testing::Test {
 protected:
  static constexpr int kN = 4;

  void SetUp() override {
    for (int i = 0; i < kN; ++i) {
      backends_.push_back(std::make_unique<MemBackend>());
      ServerOptions so;
      so.index_dir = dir_.Sub("server" + std::to_string(i));
      so.container_capacity = 64 * 1024;  // small containers: more GC action
      auto server = CdstoreServer::Create(backends_.back().get(), so);
      ASSERT_TRUE(server.ok());
      servers_.push_back(std::move(server.value()));
      transports_.push_back(std::make_unique<InProcTransport>(servers_.back()->AsHandler()));
    }
  }

  std::vector<Transport*> TransportPtrs() {
    std::vector<Transport*> out;
    for (auto& t : transports_) {
      out.push_back(t.get());
    }
    return out;
  }

  ClientOptions SmallClientOptions() {
    ClientOptions o;
    o.n = kN;
    o.k = 3;
    o.rabin.min_size = 512;
    o.rabin.avg_size = 2048;
    o.rabin.max_size = 8192;
    return o;
  }

  TempDir dir_;
  std::vector<std::unique_ptr<MemBackend>> backends_;
  std::vector<std::unique_ptr<CdstoreServer>> servers_;
  std::vector<std::unique_ptr<InProcTransport>> transports_;
};

TEST_F(GcTest, GcReclaimsDeletedFileSpace) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes keep = Rng(1).RandomBytes(120000);
  Bytes doomed = Rng(2).RandomBytes(120000);
  ASSERT_TRUE(client.Upload("/keep", keep).ok());
  ASSERT_TRUE(client.Upload("/doomed", doomed).ok());
  uint64_t before = backends_[0]->total_bytes();
  ASSERT_TRUE(client.DeleteFile("/doomed").ok());

  // Deletion alone reclaims nothing (the paper's prototype behavior).
  EXPECT_GE(backends_[0]->total_bytes(), before - 1024);

  uint64_t reclaimed_total = 0;
  for (int i = 0; i < kN; ++i) {
    auto stats = servers_[i]->CollectGarbage();
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_GT(stats.value().containers_scanned, 0u);
    reclaimed_total += stats.value().bytes_reclaimed;
  }
  EXPECT_GT(reclaimed_total, doomed.size()) << "GC must reclaim the deleted file's shares";
  EXPECT_LT(backends_[0]->total_bytes(), before);

  // The surviving file still restores after its shares were migrated.
  auto restored = client.Download("/keep");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), keep);
}

TEST_F(GcTest, GcIsNoopWhenEverythingLive) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(3).RandomBytes(100000);
  ASSERT_TRUE(client.Upload("/live", data).ok());
  auto stats = servers_[0]->CollectGarbage();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().bytes_reclaimed, 0u);
  EXPECT_EQ(stats.value().live_shares_moved, 0u);
  EXPECT_EQ(client.Download("/live").value(), data);
}

TEST_F(GcTest, GcViaRpc) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(4).RandomBytes(80000);
  ASSERT_TRUE(client.Upload("/f", data).ok());
  ASSERT_TRUE(client.DeleteFile("/f").ok());
  auto frame = transports_[0]->Call(Encode(GcRequest{}));
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(DecodeIfError(frame.value()).ok());
  GcReply reply;
  ASSERT_TRUE(Decode(frame.value(), &reply).ok());
  EXPECT_GT(reply.bytes_reclaimed, 0u);
}

TEST_F(GcTest, GcPreservesSharedShares) {
  // Two files share most content; deleting one must not lose the other's
  // data through GC.
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes common = Rng(5).RandomBytes(100000);
  Bytes file2 = common;
  Bytes extra = Rng(6).RandomBytes(30000);
  file2.insert(file2.end(), extra.begin(), extra.end());
  ASSERT_TRUE(client.Upload("/a", common).ok());
  ASSERT_TRUE(client.Upload("/b", file2).ok());
  ASSERT_TRUE(client.DeleteFile("/a").ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(servers_[i]->CollectGarbage().ok());
  }
  auto restored = client.Download("/b");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), file2);
}

TEST_F(GcTest, RepeatedDeleteGcCycles) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  for (int round = 0; round < 3; ++round) {
    Bytes data = Rng(100 + round).RandomBytes(60000);
    std::string path = "/cycle" + std::to_string(round);
    ASSERT_TRUE(client.Upload(path, data).ok());
    EXPECT_EQ(client.Download(path).value(), data);
    ASSERT_TRUE(client.DeleteFile(path).ok());
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(servers_[i]->CollectGarbage().ok());
    }
  }
  // After all cycles everything is reclaimed; a few container stubs and
  // recipe containers may remain but share bytes are gone.
  Bytes frame = servers_[0]->Handle(Encode(StatsRequest{}));
  StatsReply stats;
  ASSERT_TRUE(Decode(frame, &stats).ok());
  EXPECT_EQ(stats.unique_shares, 0u);
}

TEST_F(GcTest, GcAfterOverwriteRewritesOnlyDereferencedContainers) {
  // Upload a file, overwrite it as a NEW generation that keeps most of the
  // old content, prune the old generation, and assert GC touches only the
  // containers whose shares actually lost their last reference — fully
  // live containers are left in place.
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes gen1 = Rng(21).RandomBytes(180000);
  Bytes gen2 = gen1;
  // Rewrite the middle third: gen2 dedups the head and tail against gen1.
  Bytes churn = Rng(22).RandomBytes(60000);
  std::copy(churn.begin(), churn.end(), gen2.begin() + 60000);

  UploadFileOptions new_gen;
  new_gen.mode = PutFileMode::kNewGeneration;
  ASSERT_TRUE(client.Upload("/v", gen1, nullptr, new_gen).ok());
  ASSERT_TRUE(client.Upload("/v", gen2, nullptr, new_gen).ok());
  ASSERT_TRUE(client.DeleteVersion("/v", 1).ok());

  for (int i = 0; i < kN; ++i) {
    auto stats = servers_[i]->CollectGarbage();
    ASSERT_TRUE(stats.ok()) << stats.status();
    // Only the containers holding gen1's rewritten-region shares lost
    // references; the (many) containers of still-shared head/tail shares
    // must not be rewritten.
    EXPECT_GT(stats.value().containers_rewritten, 0u);
    EXPECT_LT(stats.value().containers_rewritten, stats.value().containers_scanned);
    EXPECT_GT(stats.value().bytes_reclaimed, 0u);
    // Far less than the whole file is reclaimable: most shares survived
    // into generation 2.
    EXPECT_LT(stats.value().bytes_reclaimed, gen1.size());
  }
  // The surviving generation restores byte-identically after migration.
  auto restored = client.Download("/v");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), gen2);
}

TEST_F(GcTest, IndexSnapshotBackupRestore) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(7).RandomBytes(90000);
  ASSERT_TRUE(client.Upload("/snap", data).ok());

  // Snapshot cloud 0's index to its own backend.
  ASSERT_TRUE(servers_[0]->BackupIndexSnapshot("index-snapshot-1").ok());
  EXPECT_TRUE(backends_[0]->Exists("index-snapshot-1"));

  // Catastrophic index loss on cloud 0: new server with an empty index dir
  // but the same (surviving) object backend.
  servers_[0].reset();
  ServerOptions so;
  so.index_dir = dir_.Sub("server0-fresh-index");
  so.container_capacity = 64 * 1024;
  auto fresh = CdstoreServer::Create(backends_[0].get(), so);
  ASSERT_TRUE(fresh.ok());
  servers_[0] = std::move(fresh.value());
  transports_[0] = std::make_unique<InProcTransport>(servers_[0]->AsHandler());

  // Without the index the file is unreachable on cloud 0 — but the client
  // can still restore via the other k clouds.
  CdstoreClient degraded(TransportPtrs(), 1, SmallClientOptions());
  EXPECT_EQ(degraded.Download("/snap").value(), data);

  // Restore the index snapshot and cloud 0 serves again.
  ASSERT_TRUE(servers_[0]->RestoreIndexSnapshot("index-snapshot-1").ok());
  transports_[1]->set_connected(false);  // force use of cloud 0
  CdstoreClient recovered(TransportPtrs(), 1, SmallClientOptions());
  auto restored = recovered.Download("/snap");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), data);
  transports_[1]->set_connected(true);
}

}  // namespace
}  // namespace cdstore
