// Regression tests for stats-accessor data races fixed by the lock-capability
// sweep: each accessor below used to read its counter without the owning
// mutex while writer threads mutated it. Every test races a polling reader
// against real mutator threads, so the TSAN CI job (this suite is on its
// list) fails if any accessor regresses to an unlocked read; the final
// equality assertions double as a single-writer-visibility check everywhere.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/kvstore/block_cache.h"
#include "src/net/faulty_http_server.h"
#include "src/net/http.h"
#include "src/storage/backend.h"
#include "src/storage/container_store.h"
#include "src/util/bytes.h"
#include "src/util/rate_limiter.h"

namespace cdstore {
namespace {

// RateLimiter::simulated_seconds()/set_simulated() vs concurrent Acquire():
// SimCloud's shape — uploader threads drain a shared limiter while the
// bench harness reads the virtual clock.
TEST(StatsRaceTest, RateLimiterSimulatedClockVsAcquire) {
  RateLimiter limiter(/*bytes_per_second=*/1 << 20, /*burst_bytes=*/1 << 10);
  limiter.set_simulated(true);

  std::atomic<bool> done{false};
  std::thread reader([&]() {
    double last = 0.0;
    while (!done.load()) {
      double now = limiter.simulated_seconds();
      EXPECT_GE(now, last);  // virtual time only moves forward
      last = now;
    }
  });

  constexpr int kThreads = 4;
  constexpr int kAcquiresPerThread = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&]() {
      for (int i = 0; i < kAcquiresPerThread; ++i) {
        limiter.Acquire(4096);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  done.store(true);
  reader.join();

  // 8 threads * 200 * 4KB at 1MB/s minus the 1KB burst: well past zero.
  EXPECT_GT(limiter.simulated_seconds(), 1.0);
  limiter.ResetSimulatedClock();
  EXPECT_EQ(limiter.simulated_seconds(), 0.0);
}

// BlockCache::hits()/misses() vs concurrent Lookup()/Insert().
TEST(StatsRaceTest, BlockCacheCountersVsLookups) {
  BlockCache cache(/*capacity_bytes=*/64 * 1024);

  std::atomic<bool> done{false};
  std::thread reader([&]() {
    while (!done.load()) {
      uint64_t h = cache.hits();
      uint64_t m = cache.misses();
      (void)h;
      (void)m;
    }
  });

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t file = static_cast<uint64_t>(t);
        uint64_t offset = static_cast<uint64_t>(i % 16);
        if (cache.Lookup(file, offset) == nullptr) {
          cache.Insert(file, offset, Bytes(128, static_cast<uint8_t>(t)));
        }
      }
    });
  }
  for (auto& t : workers) {
    t.join();
  }
  done.store(true);
  reader.join();

  // Every Lookup() recorded exactly one hit or miss.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

// ContainerStore::sealed_container_count() vs concurrent Append() sealing.
TEST(StatsRaceTest, ContainerStoreSealedCountVsAppends) {
  MemBackend backend;
  ContainerStoreOptions opts;
  opts.container_capacity = 8 * 1024;  // tiny: every few appends seals one
  ContainerStore store(&backend, opts);

  std::atomic<bool> done{false};
  std::thread reader([&]() {
    uint64_t last = 0;
    while (!done.load()) {
      uint64_t sealed = store.sealed_container_count();
      EXPECT_GE(sealed, last);  // sealing is monotonic
      last = sealed;
    }
  });

  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      Bytes blob(1024, static_cast<uint8_t>(t));
      for (int i = 0; i < kAppendsPerThread; ++i) {
        ASSERT_TRUE(store.Append(/*user=*/static_cast<uint64_t>(t), blob).ok());
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  done.store(true);
  reader.join();

  ASSERT_TRUE(store.FlushAll().ok());
  // 200KB per user through 8KB containers: sealing definitely happened.
  EXPECT_GT(store.sealed_container_count(), 0u);
}

// HttpClient::connections_opened()/requests_sent() vs concurrent Do().
TEST(StatsRaceTest, HttpClientCountersVsRequests) {
  auto server = FaultyHttpServer::Start(0);
  ASSERT_TRUE(server.ok());
  HttpClient client("127.0.0.1", (*server)->port());

  std::atomic<bool> done{false};
  std::thread reader([&]() {
    while (!done.load()) {
      uint64_t conns = client.connections_opened();
      uint64_t reqs = client.requests_sent();
      EXPECT_LE(conns, reqs + 8);  // never more dials than requests + pool cap
    }
  });

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 25;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        std::string target =
            "/b/k" + std::to_string(t) + "-" + std::to_string(i);
        auto resp = client.Do("PUT", target, BytesOf("v"), /*deadline_ms=*/5000);
        ASSERT_TRUE(resp.ok()) << resp.status();
        EXPECT_EQ(resp->status, 200);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  done.store(true);
  reader.join();

  EXPECT_EQ(client.requests_sent(),
            static_cast<uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_GE(client.connections_opened(), 1u);
}

}  // namespace
}  // namespace cdstore
