// Tests for the annotated synchronization primitives in util/sync.h: the
// RAII guards' acquire/release behaviour (including mid-scope Unlock/Lock),
// shared-vs-exclusive semantics of SharedMutex, try-lock contention, CondVar
// predicate waits on both mutex flavours, and a mixed reader/writer stress
// case meant to run under the TSAN CI job.
#include "src/util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace cdstore {
namespace {

TEST(MutexTest, TryLockReflectsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second thread must fail to acquire while we hold it.
  bool other_acquired = true;
  std::thread t([&]() { other_acquired = mu.TryLock(); });
  t.join();
  EXPECT_FALSE(other_acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCounterAcrossThreads) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 8000);
}

TEST(MutexTest, MutexLockManualUnlockThenRelock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  // While released, another thread can take it.
  bool other_acquired = false;
  std::thread t([&]() {
    other_acquired = mu.TryLock();
    if (other_acquired) mu.Unlock();
  });
  t.join();
  EXPECT_TRUE(other_acquired);
  lock.Lock();  // destructor releases once
}

TEST(SharedMutexTest, ManyReadersCoexistOneWriterExcludes) {
  SharedMutex mu;
  mu.LockShared();
  EXPECT_TRUE(mu.TryLockShared());  // second reader admitted
  EXPECT_FALSE(mu.TryLock());       // writer excluded while readers hold
  mu.UnlockShared();
  mu.UnlockShared();

  mu.Lock();
  bool reader_admitted = true;
  std::thread t([&]() { reader_admitted = mu.TryLockShared(); });
  t.join();
  EXPECT_FALSE(reader_admitted);  // writer excludes readers
  mu.Unlock();
}

TEST(SharedMutexTest, ReaderAndWriterGuards) {
  SharedMutex mu;
  int value = 0;
  {
    WriterMutexLock w(mu);
    value = 42;
  }
  {
    ReaderMutexLock r1(mu);
    ReaderMutexLock r2(mu);  // concurrent shared holds in one scope
    EXPECT_EQ(value, 42);
  }
  {
    ReaderMutexLock r(mu);
    r.Unlock();
    WriterMutexLock w(mu);  // writer admitted after manual reader release
    value = 7;
  }
  EXPECT_EQ(value, 7);
}

TEST(CondVarTest, PredicateWaitSeesFlagFlip) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  std::thread signaller([&]() {
    MutexLock lock(mu);
    ready = true;
    lock.Unlock();
    cv.SignalAll();
  });

  {
    MutexLock lock(mu);
    cv.Wait(mu, [&]() REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

TEST(CondVarTest, TimedWaitTimesOutWhenNeverSignalled) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  bool satisfied = cv.WaitForMs(mu, 10, [&]() REQUIRES(mu) { return false; });
  EXPECT_FALSE(satisfied);
}

TEST(CondVarTest, WaitOnExclusivelyHeldSharedMutex) {
  SharedMutex mu;
  CondVar cv;
  bool ready = false;

  std::thread signaller([&]() {
    WriterMutexLock lock(mu);
    ready = true;
    lock.Unlock();
    cv.SignalAll();
  });

  {
    WriterMutexLock lock(mu);
    cv.Wait(mu, [&]() REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

// Mixed readers/writers over shared state; run under TSAN in CI. Readers
// assert the pair-invariant (b == 2*a) that only holds if writer updates
// are observed atomically under the lock.
TEST(SyncStressTest, ReadersSeeConsistentPairsUnderWriters) {
  SharedMutex mu;
  int64_t a = 0;
  int64_t b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistencies{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        ReaderMutexLock lock(mu);
        if (b != 2 * a) inconsistencies.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&]() {
      for (int i = 0; i < 5000; ++i) {
        WriterMutexLock lock(mu);
        ++a;
        b = 2 * a;
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_EQ(a, 10000);
  EXPECT_EQ(b, 20000);
}

// Producer/consumer handoff through CondVar under load (TSAN-sensitive).
TEST(SyncStressTest, CondVarHandoffDeliversAllItems) {
  Mutex mu;
  CondVar cv;
  int queued = 0;
  bool done = false;
  int64_t consumed = 0;
  constexpr int kItems = 20000;

  std::thread consumer([&]() {
    while (true) {
      MutexLock lock(mu);
      cv.Wait(mu, [&]() REQUIRES(mu) { return queued > 0 || done; });
      if (queued == 0 && done) return;
      consumed += queued;
      queued = 0;
    }
  });

  for (int i = 0; i < kItems; ++i) {
    MutexLock lock(mu);
    ++queued;
    lock.Unlock();
    cv.Signal();
  }
  {
    MutexLock lock(mu);
    done = true;
  }
  cv.SignalAll();
  consumer.join();
  EXPECT_EQ(consumed, kItems);
}

}  // namespace
}  // namespace cdstore
