// End-to-end tests of the CDStore system: client + n servers + simulated
// clouds, exercising two-stage dedup, reliability under cloud failures,
// corruption recovery, metadata handling, deletion and repair.
#include <gtest/gtest.h>

#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/tcp.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/trace/synthetic.h"
#include "src/util/fs_util.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

class CdstoreSystemTest : public ::testing::Test {
 protected:
  static constexpr int kN = 4;
  static constexpr int kK = 3;

  void SetUp() override {
    for (int i = 0; i < kN; ++i) {
      backends_.push_back(std::make_unique<MemBackend>());
      ServerOptions so;
      so.index_dir = dir_.Sub("server" + std::to_string(i));
      auto server = CdstoreServer::Create(backends_.back().get(), so);
      ASSERT_TRUE(server.ok()) << server.status();
      servers_.push_back(std::move(server.value()));
      transports_.push_back(std::make_unique<InProcTransport>(servers_.back()->AsHandler()));
    }
  }

  std::vector<Transport*> TransportPtrs() {
    std::vector<Transport*> out;
    for (auto& t : transports_) {
      out.push_back(t.get());
    }
    return out;
  }

  ClientOptions SmallClientOptions() {
    ClientOptions o;
    o.n = kN;
    o.k = kK;
    o.encode_threads = 2;
    o.rabin.min_size = 512;
    o.rabin.avg_size = 2048;
    o.rabin.max_size = 8192;
    return o;
  }

  StatsReply ServerStats(int i) {
    Bytes frame = servers_[i]->Handle(Encode(StatsRequest{}));
    StatsReply reply;
    EXPECT_TRUE(Decode(frame, &reply).ok());
    return reply;
  }

  TempDir dir_;
  std::vector<std::unique_ptr<MemBackend>> backends_;
  std::vector<std::unique_ptr<CdstoreServer>> servers_;
  std::vector<std::unique_ptr<InProcTransport>> transports_;
};

TEST_F(CdstoreSystemTest, UploadDownloadRoundTrip) {
  CdstoreClient client(TransportPtrs(), /*user=*/1, SmallClientOptions());
  Bytes data = Rng(1).RandomBytes(500000);
  UploadStats up;
  ASSERT_TRUE(client.Upload("/backups/file1.tar", data, &up).ok());
  EXPECT_EQ(up.logical_bytes, data.size());
  EXPECT_GT(up.num_secrets, 50u);
  // (n,k)=(4,3): logical shares ~ 4/3 of the data plus hash overhead.
  EXPECT_GT(up.logical_share_bytes, data.size() * 4 / 3);

  DownloadStats down;
  auto restored = client.Download("/backups/file1.tar", &down);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), data);
  EXPECT_EQ(down.clouds_used.size(), static_cast<size_t>(kK));
}

TEST_F(CdstoreSystemTest, EmptyFileRoundTrip) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  ASSERT_TRUE(client.Upload("/empty", ConstByteSpan{}).ok());
  auto restored = client.Download("/empty");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored.value().empty());
}

TEST_F(CdstoreSystemTest, SmallFileRoundTrip) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = BytesOf("tiny payload");
  ASSERT_TRUE(client.Upload("/tiny", data).ok());
  auto restored = client.Download("/tiny");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), data);
}

TEST_F(CdstoreSystemTest, IntraUserDedupSkipsDuplicateUpload) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(2).RandomBytes(300000);
  UploadStats first;
  ASSERT_TRUE(client.Upload("/v1", data, &first).ok());
  EXPECT_GT(first.transferred_share_bytes, 0u);

  // Same content, different path: every share is an intra-user duplicate.
  UploadStats second;
  ASSERT_TRUE(client.Upload("/v2", data, &second).ok());
  EXPECT_EQ(second.transferred_share_bytes, 0u)
      << "re-upload of identical content must transfer no shares";
  EXPECT_EQ(second.intra_duplicate_shares, second.num_secrets * kN);

  // Both copies restore.
  EXPECT_EQ(client.Download("/v1").value(), data);
  EXPECT_EQ(client.Download("/v2").value(), data);
}

TEST_F(CdstoreSystemTest, InterUserDedupStoresOnce) {
  CdstoreClient alice(TransportPtrs(), 1, SmallClientOptions());
  CdstoreClient bob(TransportPtrs(), 2, SmallClientOptions());
  Bytes data = Rng(3).RandomBytes(200000);
  ASSERT_TRUE(alice.Upload("/shared", data).ok());
  StatsReply after_alice = ServerStats(0);

  UploadStats bob_up;
  ASSERT_TRUE(bob.Upload("/bobs-copy", data, &bob_up).ok());
  StatsReply after_bob = ServerStats(0);

  // Bob's client cannot skip the transfer (intra-user dedup only sees his
  // own data) but the server deduplicates storage (§3.3).
  EXPECT_GT(bob_up.transferred_share_bytes, 0u);
  EXPECT_EQ(after_bob.unique_shares, after_alice.unique_shares)
      << "inter-user dedup must not store duplicate shares";
  EXPECT_EQ(after_bob.stored_bytes, after_alice.stored_bytes);

  EXPECT_EQ(bob.Download("/bobs-copy").value(), data);
  EXPECT_EQ(alice.Download("/shared").value(), data);
}

TEST_F(CdstoreSystemTest, SideChannelFpQueryDoesNotLeakOtherUsers) {
  // The attack of [28]: an attacker checks by fingerprint whether someone
  // else stored a file. With two-stage dedup the answer must always be
  // "not a duplicate for you".
  CdstoreClient alice(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(4).RandomBytes(100000);
  ASSERT_TRUE(alice.Upload("/secret", data).ok());

  // Mallory crafts the same shares (she knows the plaintext hypothesis) and
  // queries cloud 0 for their fingerprints under her own user id.
  auto scheme = MakeCaontRs(kN, kK);
  RabinChunkerOptions ro;
  ro.min_size = 512;
  ro.avg_size = 2048;
  ro.max_size = 8192;
  RabinChunker chunker(ro);
  auto secrets = ChunkBuffer(chunker, data);
  FpQueryRequest query;
  query.user = 666;  // Mallory
  for (const Bytes& secret : secrets) {
    std::vector<Bytes> shares;
    ASSERT_TRUE(scheme->Encode(secret, &shares).ok());
    query.fps.push_back(FingerprintOf(shares[0]));
  }
  Bytes frame = servers_[0]->Handle(Encode(query));
  FpQueryReply reply;
  ASSERT_TRUE(Decode(frame, &reply).ok());
  for (uint8_t dup : reply.duplicate) {
    EXPECT_EQ(dup, 0) << "server must not reveal other users' dedup status";
  }
}

TEST_F(CdstoreSystemTest, GetSharesRequiresOwnership) {
  // The attack of [27]: possessing a fingerprint must not grant access to
  // the share content.
  CdstoreClient alice(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(5).RandomBytes(50000);
  ASSERT_TRUE(alice.Upload("/private", data).ok());

  // Mallory derives a valid fingerprint from hypothesized plaintext (the
  // convergent scheme is deterministic, so this is always possible).
  auto scheme = MakeCaontRs(kN, kK);
  RabinChunkerOptions ro;
  ro.min_size = 512;
  ro.avg_size = 2048;
  ro.max_size = 8192;
  RabinChunker chunker(ro);
  auto secrets = ChunkBuffer(chunker, data);
  std::vector<Bytes> shares;
  ASSERT_TRUE(scheme->Encode(secrets[0], &shares).ok());

  GetSharesRequest req;
  req.user = 666;  // not an owner
  req.fps = {FingerprintOf(shares[0])};
  Bytes frame = servers_[0]->Handle(Encode(req));
  Status st = DecodeIfError(frame);
  EXPECT_EQ(st.code(), StatusCode::kPermissionDenied);
}

TEST_F(CdstoreSystemTest, DownloadSurvivesNMinusKCloudFailures) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(6).RandomBytes(400000);
  ASSERT_TRUE(client.Upload("/resilient", data).ok());

  // n-k = 1 cloud down: restore must succeed from the other 3.
  transports_[1]->set_connected(false);
  DownloadStats stats;
  auto restored = client.Download("/resilient", &stats);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), data);
  for (int used : stats.clouds_used) {
    EXPECT_NE(used, 1);
  }
  transports_[1]->set_connected(true);
}

TEST_F(CdstoreSystemTest, DownloadFailsWithTooManyCloudFailures) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(7).RandomBytes(100000);
  ASSERT_TRUE(client.Upload("/doomed", data).ok());
  transports_[0]->set_connected(false);
  transports_[2]->set_connected(false);  // only 2 < k clouds left
  auto restored = client.Download("/doomed");
  EXPECT_FALSE(restored.ok());
  transports_[0]->set_connected(true);
  transports_[2]->set_connected(true);
}

TEST_F(CdstoreSystemTest, UnknownFileReturnsNotFound) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  auto restored = client.Download("/never-uploaded");
  EXPECT_FALSE(restored.ok());
}

TEST_F(CdstoreSystemTest, UsersCannotSeeEachOthersFiles) {
  CdstoreClient alice(TransportPtrs(), 1, SmallClientOptions());
  CdstoreClient bob(TransportPtrs(), 2, SmallClientOptions());
  Bytes data = Rng(8).RandomBytes(50000);
  ASSERT_TRUE(alice.Upload("/alices-file", data).ok());
  EXPECT_FALSE(bob.Download("/alices-file").ok())
      << "file namespaces must be per user";
}

TEST_F(CdstoreSystemTest, DeleteFileRemovesAccessAndDropsRefs) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(9).RandomBytes(150000);
  ASSERT_TRUE(client.Upload("/condemned", data).ok());
  StatsReply before = ServerStats(0);
  EXPECT_GT(before.unique_shares, 0u);
  ASSERT_TRUE(client.DeleteFile("/condemned").ok());
  EXPECT_FALSE(client.Download("/condemned").ok());
  StatsReply after = ServerStats(0);
  EXPECT_EQ(after.file_count, before.file_count - 1);
  // All shares were only referenced by this file: the index drops them.
  EXPECT_EQ(after.unique_shares, 0u);
}

TEST_F(CdstoreSystemTest, DeleteKeepsSharedShares) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(10).RandomBytes(100000);
  ASSERT_TRUE(client.Upload("/copy1", data).ok());
  ASSERT_TRUE(client.Upload("/copy2", data).ok());
  ASSERT_TRUE(client.DeleteFile("/copy1").ok());
  // copy2 still restores: its references kept the shares alive.
  auto restored = client.Download("/copy2");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), data);
}

TEST_F(CdstoreSystemTest, OverwriteReplacesContent) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes v1 = Rng(11).RandomBytes(80000);
  Bytes v2 = Rng(12).RandomBytes(90000);
  ASSERT_TRUE(client.Upload("/file", v1).ok());
  ASSERT_TRUE(client.Upload("/file", v2).ok());
  EXPECT_EQ(client.Download("/file").value(), v2);
}

TEST_F(CdstoreSystemTest, RepairRebuildsLostCloud) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(13).RandomBytes(250000);
  ASSERT_TRUE(client.Upload("/precious", data).ok());

  // Cloud 2 loses everything (fresh backend + server). The old server must
  // go first: it flushes to its backend on shutdown.
  servers_[2].reset();
  backends_[2] = std::make_unique<MemBackend>();
  ServerOptions so;
  so.index_dir = dir_.Sub("server2-rebuilt");
  auto server = CdstoreServer::Create(backends_[2].get(), so);
  ASSERT_TRUE(server.ok());
  servers_[2] = std::move(server.value());
  transports_[2] = std::make_unique<InProcTransport>(servers_[2]->AsHandler());

  // Repair re-encodes from the survivors and repopulates cloud 2.
  CdstoreClient fresh_client(TransportPtrs(), 1, SmallClientOptions());
  ASSERT_TRUE(fresh_client.RepairFile("/precious", 2).ok());
  EXPECT_GT(ServerStats(2).unique_shares, 0u);

  // Now cloud 0 fails; restore leans on the repaired cloud 2.
  transports_[0]->set_connected(false);
  auto restored = fresh_client.Download("/precious");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), data);
  transports_[0]->set_connected(true);
}

TEST_F(CdstoreSystemTest, ServerStatePersistsAcrossRestart) {
  CdstoreClient client(TransportPtrs(), 1, SmallClientOptions());
  Bytes data = Rng(14).RandomBytes(120000);
  ASSERT_TRUE(client.Upload("/durable", data).ok());

  // Restart every server process on the same backend + index dir.
  for (int i = 0; i < kN; ++i) {
    servers_[i].reset();
    ServerOptions so;
    so.index_dir = dir_.Sub("server" + std::to_string(i));
    auto server = CdstoreServer::Create(backends_[i].get(), so);
    ASSERT_TRUE(server.ok()) << server.status();
    servers_[i] = std::move(server.value());
    transports_[i] = std::make_unique<InProcTransport>(servers_[i]->AsHandler());
  }
  CdstoreClient fresh(TransportPtrs(), 1, SmallClientOptions());
  auto restored = fresh.Download("/durable");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), data);
}

TEST_F(CdstoreSystemTest, WorksOverRealTcpSockets) {
  std::vector<std::unique_ptr<TcpServer>> tcp_servers;
  std::vector<std::unique_ptr<TcpTransport>> tcp_clients;
  std::vector<Transport*> transports;
  for (int i = 0; i < kN; ++i) {
    auto server = TcpServer::Listen(0, servers_[i]->AsHandler());
    ASSERT_TRUE(server.ok());
    auto client = TcpTransport::Connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.ok());
    tcp_servers.push_back(std::move(server.value()));
    tcp_clients.push_back(std::move(client.value()));
    transports.push_back(tcp_clients.back().get());
  }
  CdstoreClient client(transports, 1, SmallClientOptions());
  Bytes data = Rng(15).RandomBytes(300000);
  ASSERT_TRUE(client.Upload("/over-tcp", data).ok());
  auto restored = client.Download("/over-tcp");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value(), data);
  for (auto& s : tcp_servers) {
    s->Stop();
  }
}

TEST_F(CdstoreSystemTest, DeterministicSharePlacementAcrossClients) {
  // §3.2: share i of a secret always lands on cloud i, for any client
  // instance — a precondition for cross-user dedup.
  CdstoreClient c1(TransportPtrs(), 1, SmallClientOptions());
  CdstoreClient c2(TransportPtrs(), 2, SmallClientOptions());
  Bytes data = Rng(16).RandomBytes(64000);
  ASSERT_TRUE(c1.Upload("/a", data).ok());
  StatsReply cloud0 = ServerStats(0);
  StatsReply cloud1 = ServerStats(1);
  ASSERT_TRUE(c2.Upload("/b", data).ok());
  // No new unique shares on any cloud: every share matched c1's placement.
  EXPECT_EQ(ServerStats(0).unique_shares, cloud0.unique_shares);
  EXPECT_EQ(ServerStats(1).unique_shares, cloud1.unique_shares);
}

TEST_F(CdstoreSystemTest, WeeklyBackupsDeduplicateLikeThePaper) {
  // Miniature Figure 6 scenario: weekly FSL-like backups, intra-user
  // savings should be very high after week 1.
  auto opts = SyntheticDataset::FslDefaults(0.25);
  opts.num_users = 2;
  opts.num_weeks = 3;
  SyntheticDataset dataset(opts);
  ClientOptions co = SmallClientOptions();

  uint64_t week1_transferred = 0;
  uint64_t week2_logical_shares = 0;
  uint64_t week2_transferred = 0;
  for (int u = 0; u < opts.num_users; ++u) {
    CdstoreClient client(TransportPtrs(), 100 + u, co);
    for (int w = 0; w < opts.num_weeks; ++w) {
      Bytes file = dataset.FileFor(u, w);
      UploadStats stats;
      ASSERT_TRUE(client
                      .Upload("/u" + std::to_string(u) + "/week" + std::to_string(w), file,
                              &stats)
                      .ok());
      if (w == 0) {
        week1_transferred += stats.transferred_share_bytes;
      } else {
        week2_logical_shares += stats.logical_share_bytes;
        week2_transferred += stats.transferred_share_bytes;
      }
    }
  }
  EXPECT_GT(week1_transferred, 0u);
  double intra_saving =
      1.0 - static_cast<double>(week2_transferred) / static_cast<double>(week2_logical_shares);
  EXPECT_GT(intra_saving, 0.85) << "subsequent weekly backups must mostly dedup";
}

}  // namespace
}  // namespace cdstore
