#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "src/util/bytes.h"
#include "src/util/crc32c.h"
#include "src/util/fs_util.h"
#include "src/util/io.h"
#include "src/util/rate_limiter.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace cdstore {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "CORRUPTION: bad checksum");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IO_ERROR");
}

// GCC 12's -Wmaybe-uninitialized looks through the inlined variant
// destructor here and flags the Status alternative's string as possibly
// uninitialized even though the value path never constructs one — a known
// false positive; keep the suppression scoped to this test.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailingHelper() { return Status::IOError("disk"); }
Status UsesReturnIfError() {
  RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}
Result<int> GivesSeven() { return 7; }
Status UsesAssignOrReturn(int* out) {
  ASSIGN_OR_RETURN(int v, GivesSeven());
  *out = v;
  return Status::Ok();
}

TEST(ResultTest, Macros) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIOError);
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 7);
}

// ----------------------------------------------------------------- Bytes --

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "deadbeef007f");
  Bytes back;
  ASSERT_TRUE(HexDecode(hex, &back));
  EXPECT_EQ(back, data);
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  Bytes out;
  EXPECT_FALSE(HexDecode("abc", &out));   // odd length
  EXPECT_FALSE(HexDecode("zz", &out));    // non-hex
  EXPECT_TRUE(HexDecode("", &out));
  EXPECT_TRUE(out.empty());
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, ConstByteSpan(a.data(), 2)));
}

TEST(BytesTest, XorIntoIsInvolution) {
  Bytes a = {0x12, 0x34, 0x56};
  Bytes b = {0xff, 0x00, 0xaa};
  Bytes orig = a;
  XorInto(a, b);
  EXPECT_NE(a, orig);
  XorInto(a, b);
  EXPECT_EQ(a, orig);
}

// -------------------------------------------------------------------- IO --

TEST(IoTest, FixedWidthRoundTrip) {
  BufferWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  BufferReader r(w.data());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(IoTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0,    1,        127,        128,
                                  300,  16383,    16384,      (1ull << 32) - 1,
                                  1ull << 32, ~0ull};
  BufferWriter w;
  for (uint64_t v : values) {
    w.PutVarint(v);
  }
  BufferReader r(w.data());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(r.GetVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(IoTest, BytesAndStringRoundTrip) {
  BufferWriter w;
  w.PutBytes(Bytes{1, 2, 3});
  w.PutString("hello");
  w.PutBytes(Bytes{});
  BufferReader r(w.data());
  Bytes b;
  std::string s;
  Bytes e;
  ASSERT_TRUE(r.GetBytes(&b).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetBytes(&e).ok());
  EXPECT_EQ(b, (Bytes{1, 2, 3}));
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(e.empty());
}

TEST(IoTest, UnderflowReturnsCorruption) {
  Bytes small = {0x01};
  BufferReader r(small);
  uint32_t v;
  EXPECT_EQ(r.GetU32(&v).code(), StatusCode::kCorruption);
}

TEST(IoTest, TruncatedVarintLengthRejected) {
  // Declares 100 bytes but provides 1.
  BufferWriter w;
  w.PutVarint(100);
  w.PutU8(0x55);
  BufferReader r(w.data());
  Bytes out;
  EXPECT_FALSE(r.GetBytes(&out).ok());
}

// ---------------------------------------------------------------- CRC32C --

TEST(Crc32cTest, KnownVector) {
  // Standard check value for CRC-32C: "123456789" -> 0xE3069283.
  std::string s = "123456789";
  EXPECT_EQ(Crc32c(BytesOf(s)), 0xe3069283u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  Rng rng(7);
  Bytes data = rng.RandomBytes(1000);
  uint32_t whole = Crc32c(data);
  uint32_t inc = Crc32c(0, ConstByteSpan(data.data(), 123));
  // Incremental API extends over the remainder.
  inc = Crc32c(inc, ConstByteSpan(data.data() + 123, data.size() - 123));
  // NOTE: our Crc32c(crc, data) chains state, equivalent to hashing the
  // concatenation.
  EXPECT_EQ(inc, whole);
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  uint32_t crc = Crc32c(BytesOf("hello"));
  EXPECT_NE(MaskCrc(crc), crc);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Crc32c(ConstByteSpan{}), 0u);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count]() { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, AsyncReturnsValues) {
  ThreadPool pool(2);
  auto f1 = pool.Async([]() { return 6 * 7; });
  auto f2 = pool.Async([]() { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&]() { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&]() { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRangeInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, FillCoversPartialWords) {
  Rng rng(5);
  Bytes b = rng.RandomBytes(13);
  EXPECT_EQ(b.size(), 13u);
  // Rough sanity: not all bytes equal.
  std::set<uint8_t> uniq(b.begin(), b.end());
  EXPECT_GT(uniq.size(), 1u);
}

// ----------------------------------------------------------------- Stats --

TEST(StatsTest, MeanAndStddev) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, FormatHelpers) {
  EXPECT_EQ(FormatSize(512), "512.00 B");
  EXPECT_EQ(FormatSize(1536), "1.50 KB");
  EXPECT_EQ(FormatThroughput(1024 * 1024, 1.0), "1.0 MB/s");
}

// ----------------------------------------------------------- RateLimiter --

TEST(RateLimiterTest, SimulatedModeAccumulatesTime) {
  RateLimiter rl(100 * 1024 * 1024);  // 100 MiB/s
  rl.set_simulated(true);
  rl.Acquire(50 * 1024 * 1024);
  EXPECT_NEAR(rl.simulated_seconds(), 0.5, 1e-9);
  rl.Acquire(50 * 1024 * 1024);
  EXPECT_NEAR(rl.simulated_seconds(), 1.0, 1e-9);
  rl.ResetSimulatedClock();
  EXPECT_EQ(rl.simulated_seconds(), 0.0);
}

TEST(RateLimiterTest, UnlimitedNeverDelays) {
  RateLimiter rl(0);
  rl.set_simulated(true);
  rl.Acquire(1ull << 30);
  EXPECT_EQ(rl.simulated_seconds(), 0.0);
}

// --------------------------------------------------------------- FsUtil --

TEST(FsUtilTest, WriteReadRoundTrip) {
  TempDir dir;
  std::string path = dir.Sub("f.bin");
  Bytes data = Rng(3).RandomBytes(4096);
  ASSERT_TRUE(WriteFile(path, data).ok());
  auto back = ReadFileBytes(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 4096u);
}

TEST(FsUtilTest, AppendExtends) {
  TempDir dir;
  std::string path = dir.Sub("f.bin");
  ASSERT_TRUE(WriteFile(path, BytesOf("abc")).ok());
  ASSERT_TRUE(AppendFile(path, BytesOf("def")).ok());
  auto back = ReadFileBytes(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(StringOf(back.value()), "abcdef");
}

TEST(FsUtilTest, MissingFileIsNotFound) {
  TempDir dir;
  EXPECT_EQ(ReadFileBytes(dir.Sub("nope")).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(FileExists(dir.Sub("nope")));
}

TEST(FsUtilTest, ListDirSeesFiles) {
  TempDir dir;
  ASSERT_TRUE(WriteFile(dir.Sub("a"), BytesOf("1")).ok());
  ASSERT_TRUE(WriteFile(dir.Sub("b"), BytesOf("2")).ok());
  auto names = ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().size(), 2u);
}

}  // namespace
}  // namespace cdstore
