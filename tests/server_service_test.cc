// Tests of the typed server service API: Dispatch()/ReplyBuilder frames
// are byte-identical to the Encode() wire format across all eight message
// types, the striped-lock server keeps dedup exact under concurrent
// multi-client uploads, the TCP worker pool drains gracefully on Stop(),
// and Flush() surfaces container-seal errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "src/cloud/profiles.h"
#include "src/cloud/sim_cloud.h"
#include "src/core/server.h"
#include "src/net/service.h"
#include "src/net/tcp.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/util/fs_util.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

Bytes MakeShare(uint64_t seed, size_t size = 600) { return Rng(seed).RandomBytes(size); }

std::vector<RecipeEntry> RecipeFor(const std::vector<Bytes>& shares) {
  std::vector<RecipeEntry> recipe;
  for (const Bytes& s : shares) {
    RecipeEntry e;
    e.fp = FingerprintOf(s);
    e.secret_size = static_cast<uint32_t>(s.size());
    e.share_size = static_cast<uint32_t>(s.size());
    recipe.push_back(e);
  }
  return recipe;
}

class ServerServiceTest : public ::testing::Test {
 protected:
  std::unique_ptr<CdstoreServer> NewServer(StorageBackend* backend, const std::string& sub) {
    ServerOptions so;
    so.index_dir = dir_.Sub(sub);
    auto server = CdstoreServer::Create(backend, so);
    EXPECT_TRUE(server.ok()) << server.status();
    return std::move(server.value());
  }

  TempDir dir_;
};

// The member Handle() shim and the free Dispatch() adapter must produce
// byte-identical reply frames, and those frames must match what Encode()
// produces for the decoded reply — across every message type, including
// error and streamed-shares replies. Two identically-driven servers keep
// the comparison honest (independent state, same deterministic ids).
TEST_F(ServerServiceTest, DispatchFramesMatchEncodeAcrossAllMessageTypes) {
  MemBackend backend_a, backend_b;
  auto a = NewServer(&backend_a, "a");
  auto b = NewServer(&backend_b, "b");

  std::vector<Bytes> shares = {MakeShare(1), MakeShare(2), MakeShare(3)};
  const UserId user = 7;

  auto both = [&](const Bytes& request) {
    Bytes via_handle = a->Handle(request);
    Bytes via_dispatch = Dispatch(*b, request);
    EXPECT_EQ(via_handle, via_dispatch);
    return via_handle;
  };

  // UploadShares: 3 unique + 1 in-request duplicate.
  {
    UploadSharesRequest req;
    req.user = user;
    req.shares = shares;
    req.shares.push_back(shares[0]);
    Bytes frame = both(Encode(req));
    UploadSharesReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    EXPECT_EQ(reply.stored, 3u);
    EXPECT_EQ(reply.deduplicated, 1u);
    EXPECT_EQ(frame, Encode(reply));
  }

  // FpQuery: stored but unreferenced shares are not yet the user's.
  {
    FpQueryRequest req;
    req.user = user;
    for (const Bytes& s : shares) {
      req.fps.push_back(FingerprintOf(s));
    }
    req.fps.push_back(FingerprintOf(BytesOf("never uploaded")));
    Bytes frame = both(Encode(req));
    FpQueryReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    EXPECT_EQ(reply.duplicate, (std::vector<uint8_t>{0, 0, 0, 0}));
    EXPECT_EQ(frame, Encode(reply));
  }

  // PutFile.
  {
    PutFileRequest req;
    req.user = user;
    req.path_key = BytesOf("path-share-0");
    req.file_size = 3 * 600;
    req.recipe = RecipeFor(shares);
    Bytes frame = both(Encode(req));
    PutFileReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    EXPECT_EQ(frame, Encode(reply));
  }

  // FpQuery again: now referenced.
  {
    FpQueryRequest req;
    req.user = user;
    req.fps = {FingerprintOf(shares[0]), FingerprintOf(shares[2])};
    Bytes frame = both(Encode(req));
    FpQueryReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    EXPECT_EQ(reply.duplicate, (std::vector<uint8_t>{1, 1}));
  }

  // GetFile round-trips the recipe.
  {
    GetFileRequest req;
    req.user = user;
    req.path_key = BytesOf("path-share-0");
    Bytes frame = both(Encode(req));
    GetFileReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    EXPECT_EQ(reply.file_size, 3u * 600u);
    ASSERT_EQ(reply.recipe.size(), shares.size());
    EXPECT_EQ(reply.recipe[1].fp, FingerprintOf(shares[1]));
    EXPECT_EQ(frame, Encode(reply));
  }

  // GetShares: the streamed ReplyBuilder frame must equal the gathered
  // Encode(GetSharesReply) frame, and carry the exact share bytes.
  {
    GetSharesRequest req;
    req.user = user;
    for (const Bytes& s : shares) {
      req.fps.push_back(FingerprintOf(s));
    }
    Bytes frame = both(Encode(req));
    GetSharesReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    ASSERT_EQ(reply.shares.size(), shares.size());
    for (size_t i = 0; i < shares.size(); ++i) {
      EXPECT_EQ(reply.shares[i], shares[i]);
    }
    EXPECT_EQ(frame, Encode(reply));
  }

  // GetShares access control: non-owners get byte-identical errors.
  {
    GetSharesRequest req;
    req.user = user + 1;
    req.fps = {FingerprintOf(shares[0])};
    Bytes frame = both(Encode(req));
    EXPECT_EQ(PeekType(frame), MsgType::kError);
    EXPECT_EQ(DecodeIfError(frame).code(), StatusCode::kPermissionDenied);
  }

  // Stats.
  {
    Bytes frame = both(Encode(StatsRequest{}));
    StatsReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    EXPECT_EQ(reply.unique_shares, 3u);
    EXPECT_EQ(reply.file_count, 1u);
    EXPECT_EQ(frame, Encode(reply));
  }

  // DeleteFile orphans all three shares.
  {
    DeleteFileRequest req;
    req.user = user;
    req.path_key = BytesOf("path-share-0");
    Bytes frame = both(Encode(req));
    DeleteFileReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    EXPECT_EQ(reply.shares_orphaned, 3u);
    EXPECT_EQ(frame, Encode(reply));
  }

  // Gc reclaims the orphaned containers.
  {
    Bytes frame = both(Encode(GcRequest{}));
    GcReply reply;
    ASSERT_TRUE(Decode(frame, &reply).ok());
    EXPECT_EQ(frame, Encode(reply));
  }

  // Unknown message type and truncated request produce identical errors.
  {
    Bytes bogus = {0xee, 1, 2, 3};
    EXPECT_EQ(PeekType(both(bogus)), MsgType::kError);
    UploadSharesRequest req;
    req.user = user;
    req.shares = {shares[0]};
    Bytes truncated = Encode(req);
    truncated.resize(truncated.size() / 2);
    EXPECT_EQ(PeekType(both(truncated)), MsgType::kError);
  }
}

// The zero-copy request view: every share span must point into the request
// frame itself, not at copied storage.
TEST_F(ServerServiceTest, UploadSharesViewSpansPointIntoFrame) {
  UploadSharesRequest req;
  req.user = 3;
  req.shares = {MakeShare(10, 100), MakeShare(11, 4096), Bytes{}};
  Bytes frame = Encode(req);

  UploadSharesRequestView view;
  ASSERT_TRUE(DecodeView(frame, &view).ok());
  EXPECT_EQ(view.user, 3u);
  ASSERT_EQ(view.shares.size(), req.shares.size());
  const uint8_t* begin = frame.data();
  const uint8_t* end = frame.data() + frame.size();
  for (size_t i = 0; i < view.shares.size(); ++i) {
    EXPECT_EQ(Bytes(view.shares[i].begin(), view.shares[i].end()), req.shares[i]);
    if (!view.shares[i].empty()) {
      EXPECT_GE(view.shares[i].data(), begin);
      EXPECT_LE(view.shares[i].data() + view.shares[i].size(), end);
    }
  }
}

// A handler that never replies must still yield a well-formed error frame.
TEST(ReplyBuilderTest, MissingReplyBecomesError) {
  ReplyBuilder rb;
  Bytes frame = rb.TakeFrame();
  EXPECT_EQ(PeekType(frame), MsgType::kError);
  EXPECT_EQ(DecodeIfError(frame).code(), StatusCode::kInternal);
}

// An error sent mid-stream overrides partially streamed shares.
TEST(ReplyBuilderTest, ErrorOverridesStreamedShares) {
  ReplyBuilder rb;
  rb.BeginShares(2);
  rb.AddShare(BytesOf("partial"));
  rb.SendError(Status::NotFound("gone"));
  Bytes frame = rb.TakeFrame();
  EXPECT_EQ(PeekType(frame), MsgType::kError);
  EXPECT_EQ(DecodeIfError(frame).code(), StatusCode::kNotFound);
}

// Inter-user dedup must stay exact when many clients upload overlapping
// share sets concurrently (§4.3 at scale): every shared fingerprint is
// stored exactly once across all racing requests, and nothing is lost.
TEST_F(ServerServiceTest, ConcurrentMultiClientUploadDedupExact) {
  MemBackend backend;
  auto server = NewServer(&backend, "concurrent");

  constexpr int kThreads = 8;
  constexpr int kSharedShares = 64;
  constexpr int kUniquePerThread = 8;
  constexpr int kBatch = 16;

  std::vector<Bytes> shared;
  for (int i = 0; i < kSharedShares; ++i) {
    shared.push_back(MakeShare(1000 + i));
  }

  std::atomic<uint64_t> total_stored{0};
  std::atomic<uint64_t> total_deduplicated{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Every thread uploads all shared shares (own order) plus its own.
      std::vector<Bytes> mine = shared;
      for (int u = 0; u < kUniquePerThread; ++u) {
        mine.push_back(MakeShare(100000 + t * 1000 + u));
      }
      std::shuffle(mine.begin(), mine.end(), std::mt19937(t));
      for (size_t off = 0; off < mine.size(); off += kBatch) {
        UploadSharesRequest req;
        req.user = static_cast<UserId>(t + 1);
        for (size_t i = off; i < std::min(mine.size(), off + kBatch); ++i) {
          req.shares.push_back(mine[i]);
        }
        Bytes frame = server->Handle(Encode(req));
        UploadSharesReply reply;
        if (!Decode(frame, &reply).ok()) {
          ++failures;
          return;
        }
        total_stored += reply.stored;
        total_deduplicated += reply.deduplicated;
        // Interleave dedup queries, the other hot striped path.
        FpQueryRequest q;
        q.user = req.user;
        q.fps = {FingerprintOf(req.shares[0])};
        FpQueryReply qr;
        if (!Decode(server->Handle(Encode(q)), &qr).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  const uint64_t expect_unique = kSharedShares + kThreads * kUniquePerThread;
  const uint64_t submitted = kThreads * (kSharedShares + kUniquePerThread);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(total_stored.load(), expect_unique) << "a shared share was stored twice or lost";
  EXPECT_EQ(total_stored.load() + total_deduplicated.load(), submitted);
  EXPECT_EQ(server->unique_share_count(), expect_unique);

  // Content survives the storm: reference the shared set and read it back.
  PutFileRequest put;
  put.user = 1;
  put.path_key = BytesOf("after-storm");
  put.file_size = 0;
  put.recipe = RecipeFor(shared);
  ASSERT_TRUE(DecodeIfError(server->Handle(Encode(put))).ok());
  GetSharesRequest get;
  get.user = 1;
  for (const Bytes& s : shared) {
    get.fps.push_back(FingerprintOf(s));
  }
  GetSharesReply got;
  ASSERT_TRUE(Decode(server->Handle(Encode(get)), &got).ok());
  ASSERT_EQ(got.shares.size(), shared.size());
  for (size_t i = 0; i < shared.size(); ++i) {
    EXPECT_EQ(got.shares[i], shared[i]);
  }
}

// Stop() must let requests already being served finish and write their
// replies before connections are cut (graceful drain).
TEST(TcpServiceTest, StopDrainsInFlightRequests) {
  std::atomic<int> started{0};
  TcpServerOptions opts;
  opts.num_workers = 2;
  auto server = TcpServer::Listen(0, [&](ConstByteSpan req) {
    ++started;
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return Bytes(req.begin(), req.end());
  }, opts);
  ASSERT_TRUE(server.ok());
  const int port = server.value()->port();

  std::atomic<int> ok_replies{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c]() {
      auto t = TcpTransport::Connect("127.0.0.1", port);
      if (!t.ok()) {
        return;
      }
      Bytes payload = Rng(c).RandomBytes(2000);
      auto reply = t.value()->Call(payload);
      if (reply.ok() && reply.value() == payload) {
        ++ok_replies;
      }
    });
  }
  // Wait until both requests are admitted to the pool, then stop mid-flight.
  while (started.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.value()->Stop();
  for (auto& c : clients) {
    c.join();
  }
  EXPECT_EQ(ok_replies.load(), 2) << "in-flight requests must complete through Stop()";
  // The listener is gone afterwards.
  EXPECT_FALSE(TcpTransport::Connect("127.0.0.1", port).ok());
}

// More connections than workers: the shared pool multiplexes them all.
TEST(TcpServiceTest, WorkerPoolServesMoreConnectionsThanWorkers) {
  TcpServerOptions opts;
  opts.num_workers = 3;
  auto server =
      TcpServer::Listen(0, [](ConstByteSpan req) { return Bytes(req.begin(), req.end()); }, opts);
  ASSERT_TRUE(server.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c]() {
      auto t = TcpTransport::Connect("127.0.0.1", server.value()->port());
      if (!t.ok()) {
        ++failures;
        return;
      }
      Rng rng(c);
      for (int i = 0; i < 12; ++i) {
        Bytes payload = rng.RandomBytes(1 + rng.Uniform(20000));
        auto reply = t.value()->Call(payload);
        if (!reply.ok() || reply.value() != payload) {
          ++failures;
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// The typed-service TCP front end serves a real CdstoreServer.
TEST_F(ServerServiceTest, TcpFrontEndDispatchesTypedService) {
  MemBackend backend;
  auto server = NewServer(&backend, "tcp");
  auto tcp = TcpServer::Listen(0, server.get());
  ASSERT_TRUE(tcp.ok());
  auto t = TcpTransport::Connect("127.0.0.1", tcp.value()->port());
  ASSERT_TRUE(t.ok());

  UploadSharesRequest req;
  req.user = 1;
  req.shares = {MakeShare(500), MakeShare(501)};
  auto frame = t.value()->Call(Encode(req));
  ASSERT_TRUE(frame.ok());
  UploadSharesReply reply;
  ASSERT_TRUE(Decode(frame.value(), &reply).ok());
  EXPECT_EQ(reply.stored, 2u);
  tcp.value()->Stop();
}

// Flush() must surface container-seal failures instead of dropping them,
// and a later flush retries the still-open containers.
TEST_F(ServerServiceTest, FlushPropagatesContainerSealErrors) {
  MemBackend inner;
  SimCloud cloud(&inner, UnlimitedProfile());
  auto server = NewServer(&cloud, "flush");

  UploadSharesRequest req;
  req.user = 1;
  req.shares = {MakeShare(900), MakeShare(901)};
  ASSERT_TRUE(DecodeIfError(server->Handle(Encode(req))).ok());

  cloud.set_available(false);
  Status st = server->Flush();
  EXPECT_FALSE(st.ok()) << "seal failure must propagate out of Flush()";
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);

  cloud.set_available(true);
  EXPECT_TRUE(server->Flush().ok()) << "retry must seal the still-open container";
  auto objects = inner.List();
  ASSERT_TRUE(objects.ok());
  EXPECT_FALSE(objects.value().empty()) << "sealed container must reach the backend";
}

}  // namespace
}  // namespace cdstore
