// Shared helpers for the table/figure reproduction binaries.
#ifndef CDSTORE_BENCH_BENCH_UTIL_H_
#define CDSTORE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/obs/metrics.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace cdstore {

// Parses "--size_mb=64"-style flags from argv; returns fallback if absent.
inline double FlagValue(int argc, char** argv, const std::string& name, double fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atof(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

inline Bytes RandomData(size_t bytes, uint64_t seed = 42) {
  Rng rng(seed);
  return rng.RandomBytes(bytes);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Sums the dedup-accel counter families mirrored into `registry`
// (cdstore_dedup_* — see src/obs/README.md) across all servers feeding it
// and prints one BENCH_JSON hit-rate line tagged with `bench`. Shows
// whether the accel's bloom/cache actually absorbed the workload's
// lookups; silent when no accel metric was ever recorded.
inline void PrintAccelHitRate(const MetricRegistry& registry, const char* bench) {
  uint64_t bloom_negative = 0, bloom_maybe = 0, cache_hits = 0, cache_misses = 0;
  bool seen = false;
  for (const MetricSample& s : registry.Snapshot()) {
    uint64_t v = static_cast<uint64_t>(s.value);
    if (s.name == "cdstore_dedup_bloom_negative_total") {
      bloom_negative += v;
      seen = true;
    } else if (s.name == "cdstore_dedup_bloom_maybe_total") {
      bloom_maybe += v;
      seen = true;
    } else if (s.name == "cdstore_dedup_cache_hits_total") {
      cache_hits += v;
      seen = true;
    } else if (s.name == "cdstore_dedup_cache_misses_total") {
      cache_misses += v;
      seen = true;
    }
  }
  if (!seen) {
    return;
  }
  uint64_t lookups = bloom_negative + bloom_maybe;
  // Lookups the accel answered without an LSM read: bloom negatives plus
  // cache hits on the maybes that fell through.
  double absorbed =
      lookups == 0 ? 0.0 : static_cast<double>(bloom_negative + cache_hits) / lookups;
  std::printf("BENCH_JSON {\"bench\":\"%s_accel_hit_rate\",\"bloom_negative\":%llu,"
              "\"bloom_maybe\":%llu,\"cache_hits\":%llu,\"cache_misses\":%llu,"
              "\"absorbed\":%.4f}\n",
              bench, static_cast<unsigned long long>(bloom_negative),
              static_cast<unsigned long long>(bloom_maybe),
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(cache_misses), absorbed);
}

}  // namespace cdstore

#endif  // CDSTORE_BENCH_BENCH_UTIL_H_
