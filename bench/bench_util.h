// Shared helpers for the table/figure reproduction binaries.
#ifndef CDSTORE_BENCH_BENCH_UTIL_H_
#define CDSTORE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace cdstore {

// Parses "--size_mb=64"-style flags from argv; returns fallback if absent.
inline double FlagValue(int argc, char** argv, const std::string& name, double fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atof(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

inline Bytes RandomData(size_t bytes, uint64_t seed = 42) {
  Rng rng(seed);
  return rng.RandomBytes(bytes);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace cdstore

#endif  // CDSTORE_BENCH_BENCH_UTIL_H_
