// Microbenchmarks (google-benchmark) for the primitive substrates: SHA-256,
// AES-256 (block + CTR), GF(2^8) region ops and Reed-Solomon encoding.
// These are the components whose costs explain the Figure 5 results.
#include <benchmark/benchmark.h>

#include "src/crypto/aes256.h"
#include "src/crypto/ctr.h"
#include "src/crypto/sha256.h"
#include "src/gf256/gf256.h"
#include "src/rs/reed_solomon.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data = Rng(1).RandomBytes(state.range(0));
  Bytes out(Sha256::kDigestSize);
  for (auto _ : state) {
    Sha256::Hash(data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(Sha256::HasShaNi() ? "SHA-NI" : "portable");
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(8192)->Arg(65536);

void BM_Aes256EncryptBlocks(benchmark::State& state) {
  Bytes key = Rng(2).RandomBytes(32);
  Aes256 aes(key);
  Bytes in = Rng(3).RandomBytes(state.range(0));
  Bytes out(in.size());
  for (auto _ : state) {
    aes.EncryptBlocks(in.data(), out.data(), in.size() / 16);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(Aes256::HasAesni() ? "AES-NI" : "portable");
}
BENCHMARK(BM_Aes256EncryptBlocks)->Arg(8192)->Arg(65536);

void BM_Aes256Ctr(benchmark::State& state) {
  Bytes key = Rng(4).RandomBytes(32);
  Aes256 aes(key);
  Bytes buf(state.range(0));
  for (auto _ : state) {
    Aes256CtrKeystreamZeroIv(aes, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aes256Ctr)->Arg(8192)->Arg(65536);

void BM_GfAddMulRegion(benchmark::State& state) {
  Rng rng(5);
  Bytes src = rng.RandomBytes(state.range(0));
  Bytes dst = rng.RandomBytes(state.range(0));
  for (auto _ : state) {
    Gf256AddMulRegion(dst, src, 0x57);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(Gf256SimdTier() == 2 ? "AVX2" : (Gf256SimdTier() == 1 ? "SSSE3" : "scalar"));
}
BENCHMARK(BM_GfAddMulRegion)->Arg(4096)->Arg(65536);

void BM_RsEncode(benchmark::State& state) {
  int n = 4, k = 3;
  ReedSolomon rs(n, k);
  Rng rng(6);
  std::vector<Bytes> data;
  for (int i = 0; i < k; ++i) {
    data.push_back(rng.RandomBytes(state.range(0)));
  }
  std::vector<Bytes> out;
  for (auto _ : state) {
    (void)rs.Encode(data, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * k);
}
BENCHMARK(BM_RsEncode)->Arg(2730)->Arg(65536);  // 2730 ≈ 8KB secret / k

void BM_RsDecodeWithParity(benchmark::State& state) {
  int n = 4, k = 3;
  ReedSolomon rs(n, k);
  Rng rng(7);
  std::vector<Bytes> data;
  for (int i = 0; i < k; ++i) {
    data.push_back(rng.RandomBytes(state.range(0)));
  }
  std::vector<Bytes> all;
  (void)rs.Encode(data, &all);
  std::vector<int> ids = {0, 2, 3};  // needs matrix inversion
  std::vector<Bytes> shards = {all[0], all[2], all[3]};
  std::vector<Bytes> out;
  for (auto _ : state) {
    (void)rs.Decode(ids, shards, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * k);
}
BENCHMARK(BM_RsDecodeWithParity)->Arg(2730);

}  // namespace
}  // namespace cdstore

BENCHMARK_MAIN();
