// Goodput under injected faults: a full CDStore client (chunking,
// CAONT-RS, dedup, pipelined download) over four FaultyHttpServer object
// stores, swept across fault rates. Each request to a cloud may draw a
// 500 or a stall from the seeded FaultPlan; the HTTP backend's
// retry/backoff + attempt deadlines absorb them, and the number that
// matters is how much goodput survives — the robustness cost curve of the
// retry layer.
//
// Emits one `BENCH_JSON {...}` line per (direction, fault-rate) point.
//
// Flags: --size_mb=8 --fault_pcts=0,5,20 --stall_ms=20 --attempts=6
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/faulty_http_server.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/storage/http_backend.h"
#include "src/util/fs_util.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

constexpr int kN = 4;
constexpr int kK = 3;

struct Deployment {
  TempDir dir;
  // One registry for the whole deployment: fault plans, retry layers,
  // servers, and the client all feed it, and the BENCH_JSON numbers are
  // read back out of it (the metrics pipeline exercised end to end).
  MetricRegistry registry;
  std::vector<std::unique_ptr<FaultyHttpServer>> object_stores;
  std::vector<std::unique_ptr<HttpObjectBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<InProcTransport>> transports;
};

// Sum of one counter family across all its labelled series.
uint64_t SumCounter(const MetricRegistry& registry, const std::string& name) {
  uint64_t total = 0;
  for (const MetricSample& s : registry.Snapshot()) {
    if (s.name == name) {
      total += static_cast<uint64_t>(s.value);
    }
  }
  return total;
}

std::unique_ptr<Deployment> MakeDeployment(double fault_rate, uint64_t stall_ms,
                                           int attempts) {
  auto d = std::make_unique<Deployment>();
  for (int i = 0; i < kN; ++i) {
    FaultSpec faults;
    faults.error_rate = fault_rate / 2.0;  // half 5xx, half stalls
    faults.stall_rate = fault_rate / 2.0;
    faults.stall_ms = stall_ms;
    faults.seed = 0xBE7C0 + static_cast<uint64_t>(i);
    auto hs = FaultyHttpServer::Start(0, faults);
    if (!hs.ok()) {
      std::fprintf(stderr, "http server: %s\n", hs.status().ToString().c_str());
      std::exit(1);
    }
    d->object_stores.push_back(std::move(hs.value()));
    d->object_stores.back()->plan()->BindMetrics(d->registry.GetCounter(
        "cdstore_fault_injected_total", {{"cloud", std::to_string(i)}}));

    HttpBackendOptions bo;
    bo.retry.max_attempts = attempts;
    bo.retry.initial_backoff_ms = 2;
    bo.retry.max_backoff_ms = 20;
    bo.retry.attempt_deadline_ms = 2000;
    bo.retry.metrics = MakeRetryMetrics(&d->registry, "cloud" + std::to_string(i));
    auto backend = HttpObjectBackend::Open(
        d->object_stores.back()->endpoint("cloud" + std::to_string(i)), bo);
    if (!backend.ok()) {
      std::fprintf(stderr, "backend: %s\n", backend.status().ToString().c_str());
      std::exit(1);
    }
    d->backends.push_back(std::move(backend.value()));

    ServerOptions so;
    so.index_dir = d->dir.Sub("server" + std::to_string(i));
    so.container_capacity = 256 << 10;  // seal often: real PUT traffic
    so.container_cache_bytes = 4096;    // downloads actually hit the wire
    so.metrics = &d->registry;
    auto server = CdstoreServer::Create(d->backends.back().get(), so);
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
      std::exit(1);
    }
    d->servers.push_back(std::move(server.value()));
    d->transports.push_back(
        std::make_unique<InProcTransport>(d->servers.back()->AsHandler()));
  }
  return d;
}

void RunPoint(double fault_pct, size_t size_bytes, uint64_t stall_ms, int attempts) {
  auto d = MakeDeployment(fault_pct / 100.0, stall_ms, attempts);
  std::vector<Transport*> transports;
  for (auto& t : d->transports) {
    transports.push_back(t.get());
  }
  ClientOptions co;
  co.n = kN;
  co.k = kK;
  co.pipelined_download = true;
  co.download_batch_bytes = 256 * 1024;
  co.metrics = &d->registry;
  CdstoreClient client(transports, 1, co);

  Bytes data = RandomData(size_bytes, 0xFA07 + static_cast<uint64_t>(fault_pct));

  Stopwatch t;
  Status up = client.Upload("/bench", data);
  for (auto& s : d->servers) {
    Status st = s->Flush();
    if (!st.ok() && up.ok()) {
      up = st;
    }
  }
  double up_s = t.ElapsedSeconds();
  if (!up.ok()) {
    std::fprintf(stderr, "upload failed at %.0f%%: %s\n", fault_pct,
                 up.ToString().c_str());
    std::exit(1);
  }

  t.Reset();
  auto down = client.Download("/bench");
  double down_s = t.ElapsedSeconds();
  if (!down.ok() || down.value() != data) {
    std::fprintf(stderr, "download failed/byte-mismatch at %.0f%%\n", fault_pct);
    std::exit(1);
  }

  // Fault/retry numbers come out of the metrics registry, the same series
  // GetMetrics and GET /metrics expose; the legacy ad-hoc counters only
  // cross-check it.
  uint64_t injected = SumCounter(d->registry, "cdstore_fault_injected_total");
  uint64_t attempts_total = SumCounter(d->registry, "cdstore_retry_attempts_total");
  uint64_t retried = 0;
  uint64_t requests = 0;
  uint64_t injected_adhoc = 0;
  for (int i = 0; i < kN; ++i) {
    injected_adhoc += d->object_stores[i]->plan()->faults_injected();
    retried += d->backends[i]->retries();
    requests += d->backends[i]->requests_sent();
  }
  if (injected != injected_adhoc || attempts_total < retried) {
    std::fprintf(stderr,
                 "metrics/ad-hoc counter mismatch: injected %llu vs %llu, "
                 "attempts %llu vs %llu retries\n",
                 static_cast<unsigned long long>(injected),
                 static_cast<unsigned long long>(injected_adhoc),
                 static_cast<unsigned long long>(attempts_total),
                 static_cast<unsigned long long>(retried));
    std::exit(1);
  }

  double mb = static_cast<double>(size_bytes) / (1024.0 * 1024.0);
  std::printf("  %5.1f%% faults: upload %6.2f MB/s, download %6.2f MB/s "
              "(%llu requests, %llu faults injected, %llu retries)\n",
              fault_pct, mb / up_s, mb / down_s,
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(injected),
              static_cast<unsigned long long>(retried));
  std::printf("BENCH_JSON {\"bench\":\"faultnet\",\"direction\":\"upload\","
              "\"fault_pct\":%.1f,\"mbps\":%.3f,\"requests\":%llu,"
              "\"faults\":%llu,\"retries\":%llu,\"retry_attempts\":%llu}\n",
              fault_pct, mb / up_s, static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(injected),
              static_cast<unsigned long long>(retried),
              static_cast<unsigned long long>(attempts_total));
  std::printf("BENCH_JSON {\"bench\":\"faultnet\",\"direction\":\"download\","
              "\"fault_pct\":%.1f,\"mbps\":%.3f}\n",
              fault_pct, mb / down_s);
}

void Run(int argc, char** argv) {
  double size_mb = FlagValue(argc, argv, "size_mb", 8.0);
  uint64_t stall_ms = static_cast<uint64_t>(FlagValue(argc, argv, "stall_ms", 20.0));
  int attempts = static_cast<int>(FlagValue(argc, argv, "attempts", 6.0));

  PrintHeader("goodput under injected faults (4 HTTP clouds, retry/backoff)");
  std::printf("  %zu MB file, stalls %llu ms, retry budget %d attempts\n",
              static_cast<size_t>(size_mb), static_cast<unsigned long long>(stall_ms),
              attempts);
  for (double pct : {0.0, 5.0, 20.0}) {
    RunPoint(pct, static_cast<size_t>(size_mb * 1024.0 * 1024.0), stall_ms, attempts);
  }
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
