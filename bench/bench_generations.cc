// Weekly backup-generation workload end to end (the system the paper
// actually measures, §5.2/§5.6): a synthetic FSL-like home directory is
// snapshotted weekly into ONE path of the versioned namespace, so every
// layer the versioning subsystem added gets exercised with real numbers —
//
//   1. per-generation dedup ratio (logical bytes / unique bytes, exact
//      from the server's first-reference accounting via ListVersions),
//   2. retention-driven pruning (ApplyRetention keep-last-K) followed by
//      GC, with reclamation measured in backend bytes,
//   3. restore-latest latency over simulated WAN links.
//
// Emits one `BENCH_JSON {...}` line per measurement; the
// generation_series_summary line's dedup_ratio feeds examples/cost_explorer
// --bench-json, replacing the §5.6 assumption with a measurement.
//
//   4. namespace scenarios (--paths=P): a P-path backup set, then (a) a
//      point-in-time RestoreNamespace(as-of mid-series) verified against
//      the dataset, and (b) the cross-path retention sweep
//      (ApplyRetentionNamespace, one commit-locked pass per page) timed
//      against the equivalent per-path ApplyRetention loop on an identical
//      deployment — same generations pruned, O(pages) lock churn.
//
// Flags: --weeks=8 --scale=2 --keep=2 --paths=4 --uplink_mbps=24 --latency_ms=2
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/trace/synthetic.h"
#include "src/util/fs_util.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

constexpr int kN = 4;
constexpr int kK = 3;
constexpr uint64_t kWeekMs = 7ull * 24 * 3600 * 1000;

// A transport that charges each call per-cloud WAN time: fixed latency plus
// request/reply serialization at the link rate (reply time matters for the
// restore measurement).
class DelayTransport : public Transport {
 public:
  DelayTransport(RpcHandler handler, double latency_s, double bytes_per_s)
      : handler_(std::move(handler)), latency_s_(latency_s), bytes_per_s_(bytes_per_s) {}

  Result<Bytes> Call(ConstByteSpan request) override {
    double secs = latency_s_;
    if (bytes_per_s_ > 0) {
      secs += static_cast<double>(request.size()) / bytes_per_s_;
    }
    if (secs > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    }
    Bytes reply = handler_(request);
    if (bytes_per_s_ > 0 && !reply.empty()) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          static_cast<double>(reply.size()) / bytes_per_s_));
    }
    return reply;
  }

 private:
  RpcHandler handler_;
  double latency_s_;
  double bytes_per_s_;
};

struct Deployment {
  TempDir dir;
  MetricRegistry registry;  // shared across the deployment's clouds
  std::vector<std::unique_ptr<MemBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<DelayTransport>> transports;
  std::vector<Transport*> ptrs;

  uint64_t TotalBackendBytes() const {
    uint64_t total = 0;
    for (const auto& b : backends) {
      total += b->total_bytes();
    }
    return total;
  }
};

std::unique_ptr<Deployment> MakeDeployment(double latency_s, double bytes_per_s) {
  auto d = std::make_unique<Deployment>();
  for (int i = 0; i < kN; ++i) {
    d->backends.push_back(std::make_unique<MemBackend>());
    ServerOptions so;
    so.index_dir = d->dir.Sub("server" + std::to_string(i));
    so.container_capacity = 1 << 20;  // small containers: visible GC action
    so.metrics = &d->registry;
    auto server = CdstoreServer::Create(d->backends.back().get(), so);
    if (!server.ok()) {
      std::fprintf(stderr, "server setup failed: %s\n", server.status().ToString().c_str());
      std::exit(1);
    }
    d->servers.push_back(std::move(server.value()));
    d->transports.push_back(std::make_unique<DelayTransport>(d->servers.back()->AsHandler(),
                                                             latency_s, bytes_per_s));
    d->ptrs.push_back(d->transports.back().get());
  }
  return d;
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  using namespace cdstore;
  const int weeks = static_cast<int>(FlagValue(argc, argv, "weeks", 8));
  const double scale = FlagValue(argc, argv, "scale", 2);
  const uint32_t keep = static_cast<uint32_t>(FlagValue(argc, argv, "keep", 2));
  const int paths = static_cast<int>(FlagValue(argc, argv, "paths", 4));
  const double uplink_mbps = FlagValue(argc, argv, "uplink_mbps", 24);
  const double latency_ms = FlagValue(argc, argv, "latency_ms", 2);

  SyntheticDatasetOptions dopts = SyntheticDataset::GenerationSeriesDefaults(scale);
  dopts.num_weeks = weeks;
  SyntheticDataset dataset(dopts);

  auto world = MakeDeployment(latency_ms / 1e3, uplink_mbps * 1e6);
  ClientOptions copts;
  copts.n = kN;
  copts.k = kK;
  CdstoreClient client(world->ptrs, /*user=*/1, copts);
  const std::string path = "/fsl/home";

  PrintHeader("Weekly generation series (FSL-shaped churn, versioned namespace)");
  std::printf("(n,k)=(%d,%d), %d weeks x ~%s/user, %.0fms/call, %.0fMB/s per cloud, "
              "retention keep-last-%u\n",
              kN, kK, weeks, FormatSize(dataset.FileSize(0, 0)).c_str(), latency_ms,
              uplink_mbps, keep);
  std::printf("%-6s %-12s %-12s %-10s %-12s\n", "week", "logical", "unique", "dedup", "MB/s");

  // 1. Upload the weekly series as generations of one path, all through
  // one warm session.
  auto session = client.OpenBackupSession();
  if (!session.ok()) {
    std::fprintf(stderr, "session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }
  std::vector<double> upload_mibps(weeks, 0);
  for (int w = 0; w < weeks; ++w) {
    Bytes data = dataset.FileFor(0, w);
    UploadFileOptions fopts;
    fopts.mode = PutFileMode::kNewGeneration;
    fopts.timestamp_ms = static_cast<uint64_t>(w + 1) * kWeekMs;
    Stopwatch watch;
    UploadStats stats;
    if (Status st = session.value()->Upload(path, data, &stats, fopts); !st.ok()) {
      std::fprintf(stderr, "week %d upload failed: %s\n", w, st.ToString().c_str());
      return 1;
    }
    upload_mibps[w] = ToMiBps(data.size(), watch.ElapsedSeconds());
  }
  (void)session.value()->Close();

  // 2. Per-generation dedup from the server's exact unique-bytes
  // accounting (cloud 0's view; all clouds agree up to share-size
  // constants).
  auto versions = client.ListVersions(path);
  if (!versions.ok()) {
    std::fprintf(stderr, "ListVersions failed: %s\n", versions.status().ToString().c_str());
    return 1;
  }
  uint64_t total_logical = 0;
  uint64_t total_unique = 0;
  for (size_t i = 0; i < versions.value().size(); ++i) {
    const VersionInfo& v = versions.value()[i];
    total_logical += v.logical_bytes;
    total_unique += v.unique_bytes;
    // unique_bytes are ONE cloud's share bytes; a share is ~1/k of its
    // secret, so unique*k is the logical data this generation newly
    // stored. logical / (unique*k) is then the dedup ratio in the same
    // "logical shares / physical shares" terms the §5.6 model uses.
    double gen_dedup = v.unique_bytes == 0
                           ? 0.0
                           : static_cast<double>(v.logical_bytes) /
                                 (static_cast<double>(v.unique_bytes) * kK);
    std::printf("%-6llu %-12s %-12s %-10.1f %-12.1f\n",
                static_cast<unsigned long long>(v.generation_id),
                FormatSize(v.logical_bytes).c_str(), FormatSize(v.unique_bytes).c_str(),
                gen_dedup, upload_mibps[i]);
    std::printf("BENCH_JSON {\"bench\":\"generation_series\",\"week\":%zu,"
                "\"generation\":%llu,\"logical_bytes\":%llu,\"unique_share_bytes\":%llu,"
                "\"gen_dedup\":%.3f,\"upload_mibps\":%.2f}\n",
                i, static_cast<unsigned long long>(v.generation_id),
                static_cast<unsigned long long>(v.logical_bytes),
                static_cast<unsigned long long>(v.unique_bytes), gen_dedup, upload_mibps[i]);
  }

  // 3. Restore-latest latency over the simulated links.
  double restore_s = 0;
  uint64_t restored_bytes = 0;
  {
    Bytes out;
    BufferByteSink sink(&out);
    Stopwatch watch;
    if (Status st = client.Download(path, sink); !st.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", st.ToString().c_str());
      return 1;
    }
    restore_s = watch.ElapsedSeconds();
    restored_bytes = out.size();
    Bytes expect = dataset.FileFor(0, weeks - 1);
    if (out != expect) {
      std::fprintf(stderr, "restore-latest mismatch\n");
      return 1;
    }
  }
  std::printf("restore latest: %s in %.3fs (%.1f MB/s)\n", FormatSize(restored_bytes).c_str(),
              restore_s, ToMiBps(restored_bytes, restore_s));
  std::printf("BENCH_JSON {\"bench\":\"generation_restore_latest\",\"bytes\":%llu,"
              "\"seconds\":%.4f,\"mibps\":%.2f}\n",
              static_cast<unsigned long long>(restored_bytes), restore_s,
              ToMiBps(restored_bytes, restore_s));

  // 4. Retention-driven pruning + GC, reclamation asserted in backend
  // bytes (the quantity a cloud bill is made of). Seal open containers
  // first so "before" counts every stored share.
  for (int i = 0; i < kN; ++i) {
    if (Status st = world->servers[i]->Flush(); !st.ok()) {
      std::fprintf(stderr, "flush failed on cloud %d: %s\n", i, st.ToString().c_str());
      return 1;
    }
  }
  uint64_t before = world->TotalBackendBytes();
  RetentionPolicy policy;
  policy.keep_last_n = keep;
  auto pruned = client.ApplyRetention(path, policy);
  if (!pruned.ok()) {
    std::fprintf(stderr, "ApplyRetention failed: %s\n", pruned.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < kN; ++i) {
    auto gc = world->servers[i]->CollectGarbage();
    if (!gc.ok()) {
      std::fprintf(stderr, "gc failed on cloud %d: %s\n", i, gc.status().ToString().c_str());
      return 1;
    }
  }
  uint64_t after = world->TotalBackendBytes();
  uint64_t reclaimed = before > after ? before - after : 0;
  std::printf("prune keep-last-%u: %u generations dropped, %s logical; GC reclaimed %s "
              "backend bytes (%s -> %s)\n",
              keep, pruned.value().generations_deleted,
              FormatSize(pruned.value().logical_bytes_deleted).c_str(),
              FormatSize(reclaimed).c_str(), FormatSize(before).c_str(),
              FormatSize(after).c_str());
  std::printf("BENCH_JSON {\"bench\":\"generation_prune\",\"keep_last\":%u,"
              "\"generations_deleted\":%u,\"logical_bytes_deleted\":%llu,"
              "\"backend_bytes_before\":%llu,\"backend_bytes_after\":%llu,"
              "\"reclaimed_bytes\":%llu}\n",
              keep, pruned.value().generations_deleted,
              static_cast<unsigned long long>(pruned.value().logical_bytes_deleted),
              static_cast<unsigned long long>(before), static_cast<unsigned long long>(after),
              static_cast<unsigned long long>(reclaimed));

  // 5. Series-wide dedup ratio in the cost model's terms: logical data
  // divided by the physical data attributable to it (per-cloud unique
  // share bytes × k converts shares back to logical-sized units).
  double dedup_ratio = total_unique == 0
                           ? 0.0
                           : static_cast<double>(total_logical) /
                                 (static_cast<double>(total_unique) * kK);
  std::printf("series dedup ratio (logical / physical-normalized): %.1fx over %d weeks\n",
              dedup_ratio, weeks);
  std::printf("BENCH_JSON {\"bench\":\"generation_series_summary\",\"weeks\":%d,"
              "\"total_logical_bytes\":%llu,\"total_unique_share_bytes\":%llu,"
              "\"dedup_ratio\":%.3f,\"restore_latest_mibps\":%.2f,"
              "\"reclaimed_bytes\":%llu}\n",
              weeks, static_cast<unsigned long long>(total_logical),
              static_cast<unsigned long long>(total_unique), dedup_ratio,
              ToMiBps(restored_bytes, restore_s),
              static_cast<unsigned long long>(reclaimed));
  // How much of the series' FpQuery traffic the lookup accel absorbed
  // without touching the LSM (dedup accel is on by default).
  PrintAccelHitRate(world->registry, "generation_series");

  // 6. Namespace scenarios: a P-path weekly backup set on two IDENTICAL
  // fresh deployments (A gets the per-path retention loop, B gets the
  // one-RPC sweep). The last path is born in the final week, so the as-of
  // restore has a genuinely skippable path.
  PrintHeader("Namespace control plane (P-path backup set)");
  SyntheticDatasetOptions nopts = SyntheticDataset::GenerationSeriesDefaults(scale);
  nopts.num_weeks = weeks;
  nopts.num_users = paths;
  SyntheticDataset ns_dataset(nopts);
  auto world_a = MakeDeployment(latency_ms / 1e3, uplink_mbps * 1e6);
  auto world_b = MakeDeployment(latency_ms / 1e3, uplink_mbps * 1e6);
  CdstoreClient client_a(world_a->ptrs, /*user=*/1, copts);
  CdstoreClient client_b(world_b->ptrs, /*user=*/1, copts);
  auto path_name = [](int u) { return "/fsl/user" + std::to_string(u); };
  for (auto [world, cl] : {std::pair{world_a.get(), &client_a}, {world_b.get(), &client_b}}) {
    (void)world;
    auto s = cl->OpenBackupSession();
    if (!s.ok()) {
      std::fprintf(stderr, "session failed: %s\n", s.status().ToString().c_str());
      return 1;
    }
    for (int w = 0; w < weeks; ++w) {
      for (int u = 0; u < paths; ++u) {
        if (u == paths - 1 && w < weeks - 1) {
          continue;  // the late-born path has only the final week
        }
        UploadFileOptions fopts;
        fopts.mode = PutFileMode::kNewGeneration;
        fopts.timestamp_ms = static_cast<uint64_t>(w + 1) * kWeekMs;
        if (Status st = s.value()->Upload(path_name(u), ns_dataset.FileFor(u, w), nullptr,
                                          fopts);
            !st.ok()) {
          std::fprintf(stderr, "namespace upload failed: %s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    (void)s.value()->Close();
  }

  // 6a. Point-in-time restore as of mid-series: every early path resolves
  // the generation of week `as_of_week`, the late-born path is skipped.
  const int as_of_week = (weeks + 1) / 2;
  RestoreSelector selector;
  selector.as_of_ms = static_cast<uint64_t>(as_of_week) * kWeekMs;
  std::map<std::string, Bytes> restored_files;
  auto factory = [&](const NamespaceEntry& e,
                     uint64_t g) -> Result<std::unique_ptr<ByteSink>> {
    (void)g;
    return std::unique_ptr<ByteSink>(new BufferByteSink(&restored_files[e.path_name]));
  };
  Stopwatch asof_watch;
  auto ns_restore = client_b.RestoreNamespace(selector, factory);
  double asof_s = asof_watch.ElapsedSeconds();
  if (!ns_restore.ok()) {
    std::fprintf(stderr, "RestoreNamespace failed: %s\n",
                 ns_restore.status().ToString().c_str());
    return 1;
  }
  for (int u = 0; u < paths - 1; ++u) {
    if (restored_files[path_name(u)] != ns_dataset.FileFor(u, as_of_week - 1)) {
      std::fprintf(stderr, "as-of restore mismatch for %s\n", path_name(u).c_str());
      return 1;
    }
  }
  if (ns_restore.value().files_skipped != 1) {
    std::fprintf(stderr, "late-born path was not skipped\n");
    return 1;
  }
  std::printf("restore-as-of week %d: %d files, %s in %.3fs (%.1f MB/s); 1 path born "
              "later skipped\n",
              as_of_week, paths - 1, FormatSize(ns_restore.value().bytes_restored).c_str(),
              asof_s, ToMiBps(ns_restore.value().bytes_restored, asof_s));
  std::printf("BENCH_JSON {\"bench\":\"namespace_restore_asof\",\"paths\":%d,"
              "\"as_of_week\":%d,\"files_restored\":%llu,\"files_skipped\":%llu,"
              "\"bytes\":%llu,\"seconds\":%.4f,\"mibps\":%.2f}\n",
              paths, as_of_week,
              static_cast<unsigned long long>(ns_restore.value().files_restored),
              static_cast<unsigned long long>(ns_restore.value().files_skipped),
              static_cast<unsigned long long>(ns_restore.value().bytes_restored), asof_s,
              ToMiBps(ns_restore.value().bytes_restored, asof_s));

  // 6b. Cross-path retention: per-path loop on A vs one namespace sweep on
  // B. Identical prune decisions, commit lock churned O(pages) not
  // O(paths).
  RetentionPolicy ns_policy;
  ns_policy.keep_last_n = keep;
  Stopwatch per_path_watch;
  uint64_t per_path_deleted = 0;
  for (int u = 0; u < paths; ++u) {
    auto reply = client_a.ApplyRetention(path_name(u), ns_policy);
    if (!reply.ok()) {
      std::fprintf(stderr, "per-path ApplyRetention failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    per_path_deleted += reply.value().generations_deleted;
  }
  double per_path_s = per_path_watch.ElapsedSeconds();
  Stopwatch sweep_watch;
  auto sweep = client_b.ApplyRetentionNamespace(ns_policy);
  double sweep_s = sweep_watch.ElapsedSeconds();
  if (!sweep.ok()) {
    std::fprintf(stderr, "ApplyRetentionNamespace failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }
  if (sweep.value().generations_deleted != per_path_deleted) {
    std::fprintf(stderr, "sweep pruned %llu generations, per-path loop pruned %llu\n",
                 static_cast<unsigned long long>(sweep.value().generations_deleted),
                 static_cast<unsigned long long>(per_path_deleted));
    return 1;
  }
  std::printf("retention keep-last-%u over %d paths: per-path loop %.1fms (%d RPCs/cloud), "
              "namespace sweep %.1fms (1 RPC/cloud, %u page(s)); %llu generations pruned "
              "by each\n",
              keep, paths, per_path_s * 1e3, paths, sweep_s * 1e3, sweep.value().pages,
              static_cast<unsigned long long>(per_path_deleted));
  std::printf("BENCH_JSON {\"bench\":\"namespace_sweep\",\"paths\":%d,\"weeks\":%d,"
              "\"keep_last\":%u,\"per_path_seconds\":%.4f,\"sweep_seconds\":%.4f,"
              "\"sweep_pages\":%u,\"generations_deleted\":%llu,\"speedup\":%.2f}\n",
              paths, weeks, keep, per_path_s, sweep_s, sweep.value().pages,
              static_cast<unsigned long long>(per_path_deleted),
              sweep_s > 0 ? per_path_s / sweep_s : 0.0);
  return 0;
}
