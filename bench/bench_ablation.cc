// Ablation benchmarks (google-benchmark) for CDStore's design choices:
//
//   1. OAEP vs Rivest AONT           (§3.2: "single encryption on a large
//      constant-value block" vs per-word encryptions)
//   2. Split-table vs log/exp GF     (why GF-Complete-style tables matter)
//   3. 4MB share batching vs per-share RPCs (§4.1 I/O batching)
//   4. Convergent hash cost          (what dedup capability adds on top of
//      a random key: one extra SHA-256 per secret)
#include <benchmark/benchmark.h>

#include "src/aont/oaep_aont.h"
#include "src/aont/rivest_aont.h"
#include "src/dispersal/aont_rs.h"
#include "src/gf256/gf256.h"
#include "src/net/transport.h"
#include "src/util/rng.h"

namespace cdstore {
namespace {

// ---- 1. AONT variants -------------------------------------------------------

void BM_AontOaep(benchmark::State& state) {
  Rng rng(1);
  Bytes x = rng.RandomBytes(state.range(0));
  Bytes key = rng.RandomBytes(kAontKeySize);
  for (auto _ : state) {
    Bytes pkg = OaepAontTransform(x, key);
    benchmark::DoNotOptimize(pkg.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AontOaep)->Arg(8192)->Arg(16384);

void BM_AontRivest(benchmark::State& state) {
  Rng rng(2);
  Bytes x = rng.RandomBytes(state.range(0));
  Bytes key = rng.RandomBytes(kRivestKeySize);
  for (auto _ : state) {
    Bytes pkg = RivestAontTransform(x, key);
    benchmark::DoNotOptimize(pkg.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AontRivest)->Arg(8192)->Arg(16384);

// ---- 2. GF region multiply ---------------------------------------------------

void BM_GfLogExp(benchmark::State& state) {
  Rng rng(3);
  Bytes src = rng.RandomBytes(state.range(0));
  Bytes dst = rng.RandomBytes(state.range(0));
  for (auto _ : state) {
    Gf256AddMulRegionLogExp(dst, src, 0x9c);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GfLogExp)->Arg(65536);

void BM_GfSplitScalar(benchmark::State& state) {
  Rng rng(4);
  Bytes src = rng.RandomBytes(state.range(0));
  Bytes dst = rng.RandomBytes(state.range(0));
  for (auto _ : state) {
    Gf256AddMulRegionScalar(dst, src, 0x9c);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GfSplitScalar)->Arg(65536);

void BM_GfSplitSimd(benchmark::State& state) {
  Rng rng(5);
  Bytes src = rng.RandomBytes(state.range(0));
  Bytes dst = rng.RandomBytes(state.range(0));
  for (auto _ : state) {
    Gf256AddMulRegion(dst, src, 0x9c);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(Gf256SimdTier() == 2 ? "AVX2" : (Gf256SimdTier() == 1 ? "SSSE3" : "scalar-fallback"));
}
BENCHMARK(BM_GfSplitSimd)->Arg(65536);

// ---- 3. RPC batching --------------------------------------------------------

// Transfers 256 shares of ~2.7KB each through a transport with per-request
// latency, one request per share vs one 4MB batch — §4.1's motivation.
void BM_RpcPerShare(benchmark::State& state) {
  RateLimiter latency(1);  // unused rate; we model latency via sleepless math
  (void)latency;
  const int kShares = 256;
  const size_t kShareSize = 2730;
  double latency_s = 0.001;  // 1ms per request (LAN RTT)
  Rng rng(6);
  Bytes share = rng.RandomBytes(kShareSize);
  for (auto _ : state) {
    double virtual_time = 0;
    InProcTransport t([](ConstByteSpan) { return Bytes{1}; });
    for (int i = 0; i < kShares; ++i) {
      (void)t.Call(share);
      virtual_time += latency_s;
    }
    benchmark::DoNotOptimize(virtual_time);
    state.SetIterationTime(virtual_time);
  }
  state.SetBytesProcessed(state.iterations() * kShares * kShareSize);
  state.SetLabel("1 RPC per share, 1ms RTT");
}
BENCHMARK(BM_RpcPerShare)->UseManualTime();

void BM_RpcBatched(benchmark::State& state) {
  const int kShares = 256;
  const size_t kShareSize = 2730;
  double latency_s = 0.001;
  Rng rng(7);
  Bytes batch = rng.RandomBytes(kShares * kShareSize);
  for (auto _ : state) {
    double virtual_time = 0;
    InProcTransport t([](ConstByteSpan) { return Bytes{1}; });
    (void)t.Call(batch);  // one 4MB-ish buffer
    virtual_time += latency_s;
    benchmark::DoNotOptimize(virtual_time);
    state.SetIterationTime(virtual_time);
  }
  state.SetBytesProcessed(state.iterations() * kShares * kShareSize);
  state.SetLabel("4MB batch, 1ms RTT");
}
BENCHMARK(BM_RpcBatched)->UseManualTime();

// ---- 4. Key derivation: convergent vs random --------------------------------

void BM_EncodeConvergent(benchmark::State& state) {
  auto scheme = MakeCaontRs(4, 3);
  Bytes secret = Rng(8).RandomBytes(8192);
  std::vector<Bytes> shares;
  for (auto _ : state) {
    (void)scheme->Encode(secret, &shares);
    benchmark::DoNotOptimize(shares.data());
  }
  state.SetBytesProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_EncodeConvergent);

void BM_EncodeRandomKeyOaep(benchmark::State& state) {
  AontRsScheme scheme(AontKind::kOaep, AontKeySource::kRandom, 4, 3);
  Bytes secret = Rng(9).RandomBytes(8192);
  std::vector<Bytes> shares;
  for (auto _ : state) {
    (void)scheme.Encode(secret, &shares);
    benchmark::DoNotOptimize(shares.data());
  }
  state.SetBytesProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_EncodeRandomKeyOaep);

}  // namespace
}  // namespace cdstore

BENCHMARK_MAIN();
