// Reproduces Figure 5(b): encoding speed versus the number of clouds n
// (4..20), with k the largest integer satisfying k/n <= 3/4, two encoding
// threads. The paper observes a mild decrease with n (~8% from n=4 to 20
// for CAONT-RS) because Reed-Solomon produces more parity shares while the
// AONT cost stays constant.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/chunking/chunker.h"
#include "src/core/coding_pipeline.h"
#include "src/dispersal/registry.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

void Run(int argc, char** argv) {
  const size_t total_bytes =
      static_cast<size_t>(FlagValue(argc, argv, "size_mb", 24)) * 1024 * 1024;
  Bytes data = RandomData(total_bytes);
  RabinChunker chunker{RabinChunkerOptions{}};
  auto secrets = ChunkBuffer(chunker, data);

  PrintHeader("Figure 5(b): encoding speed vs n (k = max k with k/n <= 3/4), 2 threads");
  std::printf("%-4s %-4s %-14s %-14s %-18s\n", "n", "k", "CAONT-RS", "AONT-RS",
              "CAONT-RS-Rivest");

  double caont_first = 0, caont_last = 0;
  for (int n = 4; n <= 20; n += 4) {
    int k = (3 * n) / 4;
    SchemeParams p{.n = n, .k = k, .r = 1, .salt = {}};
    double speeds[3] = {0, 0, 0};
    SchemeType types[3] = {SchemeType::kCaontRs, SchemeType::kAontRs,
                           SchemeType::kCaontRsRivest};
    for (int s = 0; s < 3; ++s) {
      auto scheme = std::move(MakeScheme(types[s], p).value());
      CodingPipeline pipeline(scheme.get(), 2);
      std::vector<std::vector<Bytes>> shares;
      Stopwatch watch;
      (void)pipeline.EncodeAll(secrets, &shares);
      speeds[s] = ToMiBps(total_bytes, watch.ElapsedSeconds());
    }
    if (n == 4) caont_first = speeds[0];
    caont_last = speeds[0];
    std::printf("%-4d %-4d %-14.1f %-14.1f %-18.1f\n", n, k, speeds[0], speeds[1], speeds[2]);
  }
  std::printf("\nCAONT-RS slowdown n=4 -> n=20: %.0f%% (paper: ~8%% on i5)\n",
              100.0 * (1 - caont_last / caont_first));
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
