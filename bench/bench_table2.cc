// Reproduces Table 2: measured upload/download speeds of each of the four
// simulated clouds, transferring data in 4MB units, mean (stddev) over 10
// runs. Per-run jitter is drawn from the paper's reported stddevs.
//
// Paper (MB/s): Amazon 5.87(.19)/4.45(.30)  Google 4.99(.23)/4.45(.21)
//               Azure 19.59(1.20)/13.78(.72) Rackspace 19.42(1.06)/12.93(1.47)
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cloud/profiles.h"
#include "src/cloud/sim_cloud.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

void Run(int argc, char** argv) {
  const size_t total_bytes =
      static_cast<size_t>(FlagValue(argc, argv, "size_mb", 128)) * 1024 * 1024;
  const int runs = static_cast<int>(FlagValue(argc, argv, "runs", 10));
  const size_t unit = 4 << 20;  // 4MB units (§4.1)

  PrintHeader("Table 2: per-cloud speeds, MB/s, mean (stddev) over runs");
  std::printf("%-12s %-22s %-22s\n", "Cloud", "Upload", "Download");

  Rng jitter_rng(2014);
  for (const CloudProfile& base : Table2CloudProfiles()) {
    RunningStats up_stats, down_stats;
    for (int run = 0; run < runs; ++run) {
      // Sample this run's sustained rate ~ N(mean, stddev) via a coarse
      // normal approximation (sum of uniforms).
      auto sample = [&jitter_rng](double mean, double stddev) {
        double z = 0;
        for (int i = 0; i < 12; ++i) {
          z += jitter_rng.NextDouble();
        }
        return mean + (z - 6.0) * stddev;
      };
      CloudProfile p = base;
      p.upload_mbps = std::max(0.1, sample(base.upload_mbps, base.upload_stddev));
      p.download_mbps = std::max(0.1, sample(base.download_mbps, base.download_stddev));

      MemBackend inner;
      SimCloud cloud(&inner, p, /*virtual_time=*/true);
      size_t objects = (total_bytes + unit - 1) / unit;
      Bytes data(unit, static_cast<uint8_t>(run));
      for (size_t i = 0; i < objects; ++i) {
        (void)cloud.Put("o" + std::to_string(i), data);
      }
      up_stats.Add(ToMiBps(objects * unit, cloud.upload_seconds()));
      for (size_t i = 0; i < objects; ++i) {
        (void)cloud.Get("o" + std::to_string(i));
      }
      down_stats.Add(ToMiBps(objects * unit, cloud.download_seconds()));
    }
    std::printf("%-12s %6.2f (%.2f)%8s %6.2f (%.2f)\n", base.name.c_str(),
                up_stats.mean(), up_stats.stddev(), "", down_stats.mean(),
                down_stats.stddev());
  }
  std::printf("\nPaper: Amazon 5.87(0.19)/4.45(0.30), Google 4.99(0.23)/4.45(0.21),\n"
              "       Azure 19.59(1.20)/13.78(0.72), Rackspace 19.42(1.06)/12.93(1.47)\n");
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
