// End-to-end pipeline benchmarks against n simulated clouds whose links
// have real latency and finite bandwidth (the transport sleeps, so overlap
// between compute and transfer is actually observable in wall-clock time):
//
//   1. barrier vs streaming upload (chunking config x encode threads),
//   2. N one-shot uploads vs one multi-file BackupSession (per-file
//      pipeline setup/teardown amortization),
//   3. barrier vs pipelined sink-driven download (per-cloud fetch lanes
//      overlapped with decode workers), with per-cloud skew breakdown,
//   4. microbenchmarks of the SIMD kernel tiers the pipeline leans on
//      (GF(256) region multiply, SHA-256 compression).
//
// Emits one `BENCH_JSON {...}` line per measurement for trajectory
// tracking, plus human-readable tables.
//
// Flags: --size_mb=48 --uplink_mbps=24 --latency_ms=2 --threads=2
//        --files=16 --file_kb=512
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/server.h"
#include "src/crypto/sha256.h"
#include "src/gf256/gf256.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/backend.h"
#include "src/util/rate_limiter.h"
#include "src/util/fs_util.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

constexpr int kN = 4;
constexpr int kK = 3;

// The client's shared uplink: one serial transmission queue across all n
// cloud connections, as in the paper's testbed where the client NIC /
// campus uplink gates total egress (§5.1). Unlike a token bucket with
// per-caller deficit sleeps, concurrent senders genuinely queue behind one
// another, so total throughput never exceeds the link rate.
class SharedUplink {
 public:
  explicit SharedUplink(double bytes_per_s) : rate_(bytes_per_s) {}

  void Send(size_t bytes) {
    if (rate_ <= 0) {
      return;
    }
    std::chrono::steady_clock::time_point wake;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto now = std::chrono::steady_clock::now();
      if (next_free_ < now) {
        next_free_ = now;
      }
      next_free_ += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(static_cast<double>(bytes) / rate_));
      wake = next_free_;
    }
    std::this_thread::sleep_until(wake);
  }

 private:
  double rate_;
  std::mutex mu_;
  std::chrono::steady_clock::time_point next_free_{};
};

// A transport that charges every request real wall-clock time: a fixed
// per-call latency plus serialization over either this cloud's own WAN
// path (the paper's Table 2 multi-cloud setting: per-cloud bandwidth is
// the bottleneck, the client NIC is not) or a shared client uplink (its
// LAN testbed, where the NIC gates total egress).
class DelayTransport : public Transport {
 public:
  DelayTransport(RpcHandler handler, double latency_s, double own_bytes_per_s,
                 SharedUplink* shared_uplink)
      : handler_(std::move(handler)),
        latency_s_(latency_s),
        own_bytes_per_s_(own_bytes_per_s),
        uplink_(shared_uplink) {}

  Result<Bytes> Call(ConstByteSpan request) override {
    double secs = latency_s_;
    if (uplink_ == nullptr && own_bytes_per_s_ > 0) {
      secs += static_cast<double>(request.size()) / own_bytes_per_s_;
    }
    if (secs > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    }
    if (uplink_ != nullptr) {
      uplink_->Send(request.size());
    }
    Bytes reply = handler_(request);
    // Reply bytes ride the same per-cloud WAN path, so downloads (whose
    // bulk is in the reply) cost real wall time too. The shared-uplink
    // mode models only the egress NIC and leaves replies uncharged.
    if (uplink_ == nullptr && own_bytes_per_s_ > 0 && !reply.empty()) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          static_cast<double>(reply.size()) / own_bytes_per_s_));
    }
    return reply;
  }

 private:
  RpcHandler handler_;
  double latency_s_;
  double own_bytes_per_s_;
  SharedUplink* uplink_;
};

struct Deployment {
  TempDir dir;
  std::unique_ptr<SharedUplink> uplink;
  std::vector<std::unique_ptr<MemBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<DelayTransport>> transports;
  // Extra per-client transport sets for the multi-client scenario: client c
  // talks to the SAME servers over its own WAN paths (transports[c*kN + i]).
  std::vector<std::unique_ptr<DelayTransport>> client_transports;
};

// When set, deployments and clients record into this registry — flipped by
// the metrics-overhead bench to price the obs subsystem on the hot path.
MetricRegistry* g_metrics = nullptr;
// Same switch for the span tracer (trace-overhead bench): servers and
// clients share one tracer, exactly as the CLI's --trace wiring does.
Tracer* g_tracer = nullptr;

std::unique_ptr<Deployment> MakeDeployment(double latency_s, double uplink_bytes_per_s,
                                           bool shared_uplink) {
  auto d = std::make_unique<Deployment>();
  if (shared_uplink) {
    d->uplink = std::make_unique<SharedUplink>(uplink_bytes_per_s);
  }
  for (int i = 0; i < kN; ++i) {
    d->backends.push_back(std::make_unique<MemBackend>());
    ServerOptions so;
    so.index_dir = d->dir.Sub("server" + std::to_string(i));
    so.metrics = g_metrics;
    so.tracer = g_tracer;
    auto server = CdstoreServer::Create(d->backends.back().get(), so);
    if (!server.ok()) {
      std::fprintf(stderr, "server setup failed: %s\n", server.status().ToString().c_str());
      std::exit(1);
    }
    d->servers.push_back(std::move(server.value()));
    d->transports.push_back(std::make_unique<DelayTransport>(
        d->servers.back()->AsHandler(), latency_s, uplink_bytes_per_s, d->uplink.get()));
  }
  return d;
}

struct ChunkConfig {
  const char* name;
  bool fixed;
  size_t fixed_size;
};

size_t g_stream_batch_bytes = 1 << 20;
size_t g_queue_depth = 64;
bool g_shared_uplink = false;

double MeasureUploadMiBps(const Bytes& data, bool streaming, const ChunkConfig& chunks,
                          int threads, double latency_s, double uplink_bytes_per_s) {
  auto world = MakeDeployment(latency_s, uplink_bytes_per_s, g_shared_uplink);
  std::vector<Transport*> transports;
  for (auto& t : world->transports) {
    transports.push_back(t.get());
  }
  ClientOptions opts;
  opts.n = kN;
  opts.k = kK;
  opts.encode_threads = threads;
  opts.streaming_upload = streaming;
  opts.fixed_chunking = chunks.fixed;
  opts.fixed_chunk_size = chunks.fixed_size;
  opts.stream_batch_bytes = g_stream_batch_bytes;
  opts.pipeline_queue_depth = g_queue_depth;
  opts.metrics = g_metrics;
  opts.tracer = g_tracer;
  CdstoreClient client(transports, /*user=*/1, opts);
  Stopwatch watch;
  Status st = client.Upload("/bench", data);
  double secs = watch.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "upload failed: %s\n", st.ToString().c_str());
    return 0;
  }
  return ToMiBps(data.size(), secs);
}

void BenchUpload(int argc, char** argv) {
  const size_t size_mb = static_cast<size_t>(FlagValue(argc, argv, "size_mb", 48));
  const double uplink_mbps = FlagValue(argc, argv, "uplink_mbps", 24);
  const double latency_ms = FlagValue(argc, argv, "latency_ms", 2);
  const int base_threads = static_cast<int>(FlagValue(argc, argv, "threads", 2));
  g_stream_batch_bytes =
      static_cast<size_t>(FlagValue(argc, argv, "stream_batch_kb", 1024)) * 1024;
  g_queue_depth = static_cast<size_t>(FlagValue(argc, argv, "queue_depth", 64));
  g_shared_uplink = FlagValue(argc, argv, "shared_uplink", 0) != 0;
  const size_t total_bytes = size_mb * 1024 * 1024;
  const double latency_s = latency_ms / 1e3;
  const double uplink_bytes_per_s = uplink_mbps * 1e6;

  Bytes data = RandomData(total_bytes, 4242);

  PrintHeader("Barrier vs streaming upload (wall clock, simulated clouds)");
  std::printf("(n,k)=(%d,%d), %zuMB, %.0fms/call latency, %.0fMB/s %s\n", kN, kK, size_mb,
              latency_ms, uplink_mbps,
              g_shared_uplink ? "shared client uplink" : "uplink per cloud");
  std::printf("(single-core hosts understate the streaming gain: encode, server handlers\n"
              " and uploaders time-share one CPU, so compute cannot fully hide in the wire)\n");
  std::printf("%-12s %-9s %-14s %-14s %-9s\n", "Chunking", "Threads", "Barrier MB/s",
              "Stream MB/s", "Speedup");

  const ChunkConfig configs[] = {
      {"fixed4k", true, 4096},
      {"fixed8k", true, 8192},
      {"rabin8k", false, 0},
  };
  double best_speedup = 0;
  const int thread_counts[] = {1, base_threads, 2 * base_threads};
  for (const ChunkConfig& cc : configs) {
    for (int threads : thread_counts) {
      double barrier =
          MeasureUploadMiBps(data, false, cc, threads, latency_s, uplink_bytes_per_s);
      double stream =
          MeasureUploadMiBps(data, true, cc, threads, latency_s, uplink_bytes_per_s);
      double speedup = barrier > 0 ? stream / barrier : 0;
      best_speedup = std::max(best_speedup, speedup);
      std::printf("%-12s %-9d %-14.1f %-14.1f %-9.2f\n", cc.name, threads, barrier, stream,
                  speedup);
      std::printf(
          "BENCH_JSON {\"bench\":\"pipeline_upload\",\"chunker\":\"%s\",\"threads\":%d,"
          "\"size_mb\":%zu,\"uplink_mbps\":%.1f,\"latency_ms\":%.1f,\"shared_uplink\":%d,"
          "\"barrier_mibps\":%.2f,\"stream_mibps\":%.2f,\"speedup\":%.3f}\n",
          cc.name, threads, size_mb, uplink_mbps, latency_ms, g_shared_uplink ? 1 : 0, barrier,
          stream, speedup);
    }
  }
  std::printf("BENCH_JSON {\"bench\":\"pipeline_upload_summary\",\"best_speedup\":%.3f}\n",
              best_speedup);
}

ClientOptions BenchClientOptions(int threads) {
  ClientOptions opts;
  opts.n = kN;
  opts.k = kK;
  opts.encode_threads = threads;
  opts.decode_threads = threads;
  opts.stream_batch_bytes = g_stream_batch_bytes;
  opts.pipeline_queue_depth = g_queue_depth;
  return opts;
}

// N one-shot uploads (each pays pipeline thread setup/teardown) vs one
// BackupSession streaming the same N files through persistent encode
// workers and per-cloud uploader threads.
void BenchSession(int argc, char** argv) {
  const int files = static_cast<int>(FlagValue(argc, argv, "files", 16));
  const size_t file_kb = static_cast<size_t>(FlagValue(argc, argv, "file_kb", 512));
  const double uplink_mbps = FlagValue(argc, argv, "uplink_mbps", 24);
  const double latency_ms = FlagValue(argc, argv, "latency_ms", 2);
  const int threads = static_cast<int>(FlagValue(argc, argv, "threads", 2));
  const double latency_s = latency_ms / 1e3;
  const double uplink_bytes_per_s = uplink_mbps * 1e6;

  std::vector<Bytes> dataset;
  dataset.reserve(files);
  for (int f = 0; f < files; ++f) {
    dataset.push_back(RandomData(file_kb * 1024, 9000 + f));
  }

  auto run = [&](bool use_session) {
    auto world = MakeDeployment(latency_s, uplink_bytes_per_s, g_shared_uplink);
    std::vector<Transport*> transports;
    for (auto& t : world->transports) {
      transports.push_back(t.get());
    }
    CdstoreClient client(transports, /*user=*/1, BenchClientOptions(threads));
    Stopwatch watch;
    if (use_session) {
      auto session = client.OpenBackupSession();
      if (!session.ok()) {
        std::fprintf(stderr, "session failed: %s\n", session.status().ToString().c_str());
        std::exit(1);
      }
      for (int f = 0; f < files; ++f) {
        if (!session.value()->Upload("/f" + std::to_string(f), dataset[f]).ok()) {
          std::exit(1);
        }
      }
      (void)session.value()->Close();
    } else {
      for (int f = 0; f < files; ++f) {
        if (!client.Upload("/f" + std::to_string(f), dataset[f]).ok()) {
          std::exit(1);
        }
      }
    }
    return watch.ElapsedSeconds();
  };

  PrintHeader("Multi-file backup: N one-shot uploads vs one session");
  std::printf("%d files x %zuKB, %.0fms/call latency, %.0fMB/s per cloud\n", files, file_kb,
              latency_ms, uplink_mbps);
  double oneshot_s = run(false);
  double session_s = run(true);
  double speedup = session_s > 0 ? oneshot_s / session_s : 0;
  double per_file_saving_ms = files > 0 ? (oneshot_s - session_s) * 1e3 / files : 0;
  std::printf("one-shot: %.3fs   session: %.3fs   speedup %.2fx "
              "(%.2fms less per-file overhead)\n",
              oneshot_s, session_s, speedup, per_file_saving_ms);
  std::printf(
      "BENCH_JSON {\"bench\":\"session_multifile\",\"files\":%d,\"file_kb\":%zu,"
      "\"oneshot_s\":%.4f,\"session_s\":%.4f,\"speedup\":%.3f,"
      "\"per_file_saving_ms\":%.3f}\n",
      files, file_kb, oneshot_s, session_s, speedup, per_file_saving_ms);
}

// Barrier download (fetch every cloud sequentially, then decode, then emit)
// vs pipelined sink-driven download (per-cloud fetch lanes overlapped with
// decode workers).
void BenchDownload(int argc, char** argv) {
  const size_t size_mb = static_cast<size_t>(FlagValue(argc, argv, "size_mb", 48));
  const double uplink_mbps = FlagValue(argc, argv, "uplink_mbps", 24);
  const double latency_ms = FlagValue(argc, argv, "latency_ms", 2);
  const int threads = static_cast<int>(FlagValue(argc, argv, "threads", 2));
  const double latency_s = latency_ms / 1e3;
  const double uplink_bytes_per_s = uplink_mbps * 1e6;

  Bytes data = RandomData(size_mb * 1024 * 1024, 777);
  auto world = MakeDeployment(latency_s, uplink_bytes_per_s, g_shared_uplink);
  std::vector<Transport*> transports;
  for (auto& t : world->transports) {
    transports.push_back(t.get());
  }
  {
    CdstoreClient uploader(transports, /*user=*/1, BenchClientOptions(threads));
    if (!uploader.Upload("/bench", data).ok()) {
      std::fprintf(stderr, "upload for download bench failed\n");
      std::exit(1);
    }
  }

  auto run = [&](bool pipelined, DownloadStats* stats) {
    ClientOptions opts = BenchClientOptions(threads);
    opts.pipelined_download = pipelined;
    CdstoreClient client(transports, /*user=*/1, opts);
    Bytes restored;
    BufferByteSink sink(&restored);
    Stopwatch watch;
    Status st = client.Download("/bench", sink, stats);
    double secs = watch.ElapsedSeconds();
    if (!st.ok() || restored != data) {
      std::fprintf(stderr, "download failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    return ToMiBps(data.size(), secs);
  };

  PrintHeader("Barrier vs pipelined download (wall clock, simulated clouds)");
  std::printf("%zuMB, %.0fms/call latency, %.0fMB/s per cloud path\n", size_mb, latency_ms,
              uplink_mbps);
  DownloadStats barrier_stats;
  DownloadStats pipelined_stats;
  double barrier = run(false, &barrier_stats);
  double pipelined = run(true, &pipelined_stats);
  double speedup = barrier > 0 ? pipelined / barrier : 0;
  std::printf("barrier: %.1f MB/s   pipelined: %.1f MB/s   speedup %.2fx\n", barrier,
              pipelined, speedup);
  std::printf(
      "BENCH_JSON {\"bench\":\"pipeline_download\",\"size_mb\":%zu,\"uplink_mbps\":%.1f,"
      "\"latency_ms\":%.1f,\"barrier_mibps\":%.2f,\"pipelined_mibps\":%.2f,"
      "\"speedup\":%.3f}\n",
      size_mb, uplink_mbps, latency_ms, barrier, pipelined, speedup);
  // Per-cloud skew: which clouds actually served the restore, and how much.
  for (size_t c = 0; c < pipelined_stats.per_cloud.size(); ++c) {
    const CloudDownloadStats& cs = pipelined_stats.per_cloud[c];
    if (cs.rpcs == 0 && cs.received_share_bytes == 0) {
      continue;
    }
    std::printf("  cloud %zu: %.1f MB received over %llu RPCs\n", c,
                static_cast<double>(cs.received_share_bytes) / (1024 * 1024),
                static_cast<unsigned long long>(cs.rpcs));
    std::printf(
        "BENCH_JSON {\"bench\":\"download_cloud_skew\",\"cloud\":%zu,"
        "\"received_bytes\":%llu,\"rpcs\":%llu}\n",
        c, static_cast<unsigned long long>(cs.received_share_bytes),
        static_cast<unsigned long long>(cs.rpcs));
  }
}

// M concurrent BackupSessions (distinct users, distinct data, each over
// its own WAN paths) against ONE set of servers: the server-side scaling
// scenario the striped-lock dispatch surface exists for. Under the old
// global server mutex, aggregate throughput stayed ~flat as clients were
// added; with fingerprint-striped handlers it should grow until the wire
// or the host CPU saturates.
void BenchMultiClient(int argc, char** argv) {
  const size_t file_mb = static_cast<size_t>(FlagValue(argc, argv, "mc_file_mb", 8));
  const double uplink_mbps = FlagValue(argc, argv, "mc_uplink_mbps", 12);
  const double latency_ms = FlagValue(argc, argv, "mc_latency_ms", 2);
  const double latency_s = latency_ms / 1e3;
  const double uplink_bytes_per_s = uplink_mbps * 1e6;

  PrintHeader("Multi-client upload scaling (one server set, M concurrent sessions)");
  std::printf("%zuMB/client, %.0fms/call latency, %.0fMB/s per client-cloud path\n", file_mb,
              latency_ms, uplink_mbps);

  // Record into a scenario-local registry so the accel hit-rate line below
  // reflects exactly this workload's FpQuery traffic.
  MetricRegistry registry;
  g_metrics = &registry;

  auto client_options = []() {
    ClientOptions opts;
    opts.n = kN;
    opts.k = kK;
    // Cheap client compute (fixed chunking, one encode worker) keeps the
    // measurement about the server dispatch surface, not client encoding.
    opts.encode_threads = 1;
    opts.fixed_chunking = true;
    opts.fixed_chunk_size = 8192;
    return opts;
  };

  double aggregate_1 = 0;
  for (int clients : {1, 2, 4}) {
    auto world = MakeDeployment(latency_s, uplink_bytes_per_s, /*shared_uplink=*/false);
    // One transport set per client: own WAN path, shared servers.
    for (int c = 1; c < clients; ++c) {
      for (int i = 0; i < kN; ++i) {
        world->client_transports.push_back(std::make_unique<DelayTransport>(
            world->servers[i]->AsHandler(), latency_s, uplink_bytes_per_s, nullptr));
      }
    }
    std::vector<Bytes> dataset;
    for (int c = 0; c < clients; ++c) {
      dataset.push_back(RandomData(file_mb * 1024 * 1024, 31337 + c));
    }
    std::atomic<int> failures{0};
    Stopwatch watch;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c]() {
        std::vector<Transport*> transports;
        for (int i = 0; i < kN; ++i) {
          transports.push_back(c == 0 ? static_cast<Transport*>(world->transports[i].get())
                                      : world->client_transports[(c - 1) * kN + i].get());
        }
        CdstoreClient client(transports, /*user=*/static_cast<UserId>(c + 1),
                             client_options());
        auto session = client.OpenBackupSession();
        if (!session.ok() ||
            !session.value()->Upload("/client" + std::to_string(c), dataset[c]).ok()) {
          ++failures;
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    double secs = watch.ElapsedSeconds();
    if (failures.load() != 0) {
      std::fprintf(stderr, "multi-client upload failed\n");
      std::exit(1);
    }
    double aggregate = ToMiBps(static_cast<uint64_t>(clients) * file_mb * 1024 * 1024, secs);
    if (clients == 1) {
      aggregate_1 = aggregate;
    }
    double scaling = aggregate_1 > 0 ? aggregate / aggregate_1 : 0;
    std::printf("%d client(s): %.1f MB/s aggregate (%.2fx vs 1 client)\n", clients, aggregate,
                scaling);
    std::printf(
        "BENCH_JSON {\"bench\":\"multi_client_upload\",\"clients\":%d,\"file_mb\":%zu,"
        "\"uplink_mbps\":%.1f,\"latency_ms\":%.1f,\"aggregate_mibps\":%.2f,"
        "\"scaling_vs_1\":%.3f}\n",
        clients, file_mb, uplink_mbps, latency_ms, aggregate, scaling);
  }
  // How much of the concurrent-upload FpQuery traffic the dedup accel
  // absorbed without an LSM read (summed across the 1/2/4-client rounds).
  PrintAccelHitRate(registry, "multi_client_upload");
  g_metrics = nullptr;
}

// The obs acceptance gate: the same streaming upload, metrics off vs fully
// wired (server dispatch histograms, client per-cloud RPC timers, queue
// gauges, dedup counters). No simulated latency or bandwidth cap, so the
// run is compute-bound and any recording cost lands squarely in the wall
// clock. Best-of-3 per arm, alternating, to cancel machine drift.
void BenchMetricsOverhead(int argc, char** argv) {
  const size_t size_mb = static_cast<size_t>(FlagValue(argc, argv, "metrics_mb", 16));
  const int threads = static_cast<int>(FlagValue(argc, argv, "threads", 2));
  const ChunkConfig cc{"fixed8k", true, 8192};
  Bytes data = RandomData(size_mb * 1024 * 1024, 6060);

  PrintHeader("Metrics overhead: streaming upload, obs off vs fully instrumented");
  std::printf("%zuMB, fixed8k, %d encode threads, no simulated wire\n", size_mb, threads);
  double off = 0;
  double on = 0;
  for (int rep = 0; rep < 3; ++rep) {
    g_metrics = nullptr;
    off = std::max(off, MeasureUploadMiBps(data, true, cc, threads, 0.0, 0.0));
    MetricRegistry registry;
    g_metrics = &registry;
    on = std::max(on, MeasureUploadMiBps(data, true, cc, threads, 0.0, 0.0));
    g_metrics = nullptr;
  }
  double overhead_pct = off > 0 ? (off - on) / off * 100.0 : 0;
  std::printf("metrics off: %.1f MB/s   on: %.1f MB/s   overhead %.2f%%\n", off, on,
              overhead_pct);
  std::printf("BENCH_JSON {\"bench\":\"metrics_overhead\",\"size_mb\":%zu,"
              "\"off_mibps\":%.2f,\"on_mibps\":%.2f,\"overhead_pct\":%.2f}\n",
              size_mb, off, on, overhead_pct);
}

// The tracing acceptance gate (PR 9): the same compute-bound streaming
// upload in three arms — tracer off, tracer attached but the request
// unsampled (the always-on production configuration: one sampling decision
// per request, every span site reduced to a nullptr/flag check), and fully
// sampled (every span recorded into the per-thread rings, context on every
// wire frame). "Unsampled within noise" is the gate; the sampled number
// prices what a traced request actually costs. Best-of-3 alternating.
void BenchTraceOverhead(int argc, char** argv) {
  const size_t size_mb = static_cast<size_t>(FlagValue(argc, argv, "trace_mb", 16));
  const int threads = static_cast<int>(FlagValue(argc, argv, "threads", 2));
  const ChunkConfig cc{"fixed8k", true, 8192};
  Bytes data = RandomData(size_mb * 1024 * 1024, 7070);

  PrintHeader("Tracing overhead: streaming upload, off vs unsampled vs sampled");
  std::printf("%zuMB, fixed8k, %d encode threads, no simulated wire\n", size_mb, threads);
  double off = 0;
  double unsampled = 0;
  double sampled = 0;
  for (int rep = 0; rep < 3; ++rep) {
    g_tracer = nullptr;
    off = std::max(off, MeasureUploadMiBps(data, true, cc, threads, 0.0, 0.0));
    {
      // sample_every_n beyond the request count: the tracer is live on
      // every span site but no request wins the sampling lottery.
      TraceOptions topts;
      topts.sample_every_n = 1u << 30;
      topts.slow_threshold_ns = UINT64_MAX;
      Tracer tracer(topts);
      g_tracer = &tracer;
      unsampled = std::max(unsampled, MeasureUploadMiBps(data, true, cc, threads, 0.0, 0.0));
    }
    {
      Tracer tracer;  // defaults: every request sampled
      g_tracer = &tracer;
      sampled = std::max(sampled, MeasureUploadMiBps(data, true, cc, threads, 0.0, 0.0));
    }
    g_tracer = nullptr;
  }
  double unsampled_pct = off > 0 ? (off - unsampled) / off * 100.0 : 0;
  double sampled_pct = off > 0 ? (off - sampled) / off * 100.0 : 0;
  std::printf("tracing off: %.1f MB/s   unsampled: %.1f MB/s (%.2f%%)   "
              "sampled: %.1f MB/s (%.2f%%)\n",
              off, unsampled, unsampled_pct, sampled, sampled_pct);
  std::printf("BENCH_JSON {\"bench\":\"trace_overhead\",\"size_mb\":%zu,"
              "\"off_mibps\":%.2f,\"unsampled_mibps\":%.2f,\"sampled_mibps\":%.2f,"
              "\"unsampled_overhead_pct\":%.2f,\"sampled_overhead_pct\":%.2f}\n",
              size_mb, off, unsampled, sampled, unsampled_pct, sampled_pct);
}

double MeasureGfMiBps(void (*fn)(uint8_t*, const uint8_t*, size_t, const uint8_t*,
                                 const uint8_t*),
                      size_t region, double budget_s) {
  const auto& t = internal::GetGf256Tables();
  Bytes src = RandomData(region, 1);
  Bytes dst = RandomData(region, 2);
  // Warm up + calibrate.
  fn(dst.data(), src.data(), region, t.split_lo[57], t.split_hi[57]);
  Stopwatch watch;
  uint64_t bytes = 0;
  while (watch.ElapsedSeconds() < budget_s) {
    fn(dst.data(), src.data(), region, t.split_lo[57], t.split_hi[57]);
    bytes += region;
  }
  return ToMiBps(bytes, watch.ElapsedSeconds());
}

void ScalarKernel(uint8_t* dst, const uint8_t* src, size_t n, const uint8_t* lo,
                  const uint8_t* hi) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] ^= static_cast<uint8_t>(lo[src[i] & 0xf] ^ hi[src[i] >> 4]);
  }
}

void BenchKernels() {
  PrintHeader("GF(256) AddMulRegion tiers (MB/s)");
  std::printf("%-10s %-12s %-12s %-12s\n", "Region", "Scalar", "SSSE3", "AVX2");
  for (size_t region : {4096ul, 65536ul, 1048576ul}) {
    double scalar = MeasureGfMiBps(&ScalarKernel, region, 0.2);
    double ssse3 =
        internal::SimdAvailable() ? MeasureGfMiBps(&internal::AddMulRegionSsse3, region, 0.2) : 0;
    double avx2 =
        internal::Avx2Available() ? MeasureGfMiBps(&internal::AddMulRegionAvx2, region, 0.2) : 0;
    std::printf("%-10zu %-12.0f %-12.0f %-12.0f\n", region, scalar, ssse3, avx2);
    std::printf(
        "BENCH_JSON {\"bench\":\"gf256_addmul\",\"region\":%zu,\"scalar_mibps\":%.1f,"
        "\"ssse3_mibps\":%.1f,\"avx2_mibps\":%.1f}\n",
        region, scalar, ssse3, avx2);
  }

  PrintHeader("SHA-256 compression (MB/s, 1MB messages)");
  const size_t msg_size = 1 << 20;
  Bytes msg = RandomData(msg_size, 3);
  auto measure_sha = [&](bool use_ni) {
    uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                         0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    size_t blocks = msg_size / Sha256::kBlockSize;
    Stopwatch watch;
    uint64_t bytes = 0;
    while (watch.ElapsedSeconds() < 0.2) {
      if (use_ni) {
        internal::ShaNiProcessBlocks(state, msg.data(), blocks);
      } else {
        internal::Sha256ProcessBlocksScalar(state, msg.data(), blocks);
      }
      bytes += blocks * Sha256::kBlockSize;
    }
    return ToMiBps(bytes, watch.ElapsedSeconds());
  };
  double scalar = measure_sha(false);
  double ni = internal::ShaNiAvailable() ? measure_sha(true) : 0;
  std::printf("scalar: %.0f   sha-ni: %.0f   (%.1fx)\n", scalar, ni,
              scalar > 0 ? ni / scalar : 0);
  std::printf("BENCH_JSON {\"bench\":\"sha256\",\"scalar_mibps\":%.1f,\"shani_mibps\":%.1f}\n",
              scalar, ni);
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::BenchKernels();
  cdstore::BenchUpload(argc, argv);
  cdstore::BenchSession(argc, argv);
  cdstore::BenchDownload(argc, argv);
  cdstore::BenchMultiClient(argc, argv);
  cdstore::BenchMetricsOverhead(argc, argv);
  cdstore::BenchTraceOverhead(argc, argv);
  return 0;
}
