// Reproduces Figure 8: aggregate upload speed of multiple concurrent
// CDStore clients on the LAN testbed, for unique and duplicate data.
//
// Link model (all virtual clocks): each client has its own 110MB/s NIC;
// each of the 4 servers has a 110MB/s ingress NIC shared by all clients
// and a ~95MB/s disk for container writes. Client compute runs for real
// and is scaled by the client count (each client is its own machine in
// the paper's testbed). Aggregate speed = total logical bytes /
// max(slowest modeled resource, per-client compute).
//
// Paper: uniq rises to ~282MB/s at 8 clients (disk-bound; 310 without
// disk I/O ≈ k x 110MB/s); dup reaches ~572MB/s, kneeing at 4 clients on
// server CPU.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/util/fs_util.h"
#include "src/util/logging.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

constexpr int kN = 4;
constexpr double kClientNicMBps = 110.0;
constexpr double kServerNicMBps = 110.0;
constexpr double kServerDiskMBps = 95.0;
// Effective per-server CPU throughput for dedup/index processing of
// duplicate uploads (fingerprint queries); calibrated to the paper's
// ~572MB/s plateau across 4 servers.
constexpr double kServerCpuDupMBps = 143.0;

struct Lan {
  std::vector<std::unique_ptr<MemBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<RateLimiter>> owned;
  std::vector<RateLimiter*> server_links;  // ingress+disk+cpu per server

  RateLimiter* NewLimiter(double mbps) {
    owned.push_back(std::make_unique<RateLimiter>(static_cast<uint64_t>(mbps * 1024 * 1024)));
    owned.back()->set_simulated(true);
    return owned.back().get();
  }
};

void Run(int argc, char** argv) {
  const size_t bytes_per_client =
      static_cast<size_t>(FlagValue(argc, argv, "size_mb", 24)) * 1024 * 1024;
  TempDir dir("fig8");

  PrintHeader("Figure 8: aggregate upload speed vs #clients, LAN, (n,k)=(4,3)");
  std::printf("%-10s %-18s %-18s\n", "Clients", "Upload uniq MB/s", "Upload dup MB/s");

  for (int m : {1, 2, 4, 6, 8}) {
    Lan lan;
    std::vector<RateLimiter*> ingress, disk, cpu;
    for (int i = 0; i < kN; ++i) {
      lan.backends.push_back(std::make_unique<MemBackend>());
      ServerOptions so;
      so.index_dir = dir.Sub("m" + std::to_string(m) + "-server" + std::to_string(i));
      auto server = CdstoreServer::Create(lan.backends.back().get(), so);
      CHECK_OK(server.status());
      lan.servers.push_back(std::move(server.value()));
      ingress.push_back(lan.NewLimiter(kServerNicMBps));
      disk.push_back(lan.NewLimiter(kServerDiskMBps));
      cpu.push_back(lan.NewLimiter(kServerCpuDupMBps));
    }

    // Each client gets its own NIC limiter and transports that charge both
    // the client NIC and the target server's ingress; stored bytes also
    // charge the server disk (containers are written through).
    double uniq_compute = 0, dup_compute = 0;
    for (int c = 0; c < m; ++c) {
      RateLimiter* nic = lan.NewLimiter(kClientNicMBps);
      std::vector<std::unique_ptr<InProcTransport>> transports;
      std::vector<Transport*> ptrs;
      for (int i = 0; i < kN; ++i) {
        // Wrap the server handler so stored share bytes charge disk and
        // processed bytes charge server CPU.
        CdstoreServer* server = lan.servers[i].get();
        RateLimiter* d = disk[i];
        RateLimiter* q = cpu[i];
        RpcHandler handler = [server, d, q](ConstByteSpan req) {
          if (PeekType(req) == MsgType::kUploadSharesRequest) {
            d->Acquire(req.size());  // container write-through
          }
          q->Acquire(req.size());  // index/fp processing
          return server->Handle(req);
        };
        transports.push_back(std::make_unique<InProcTransport>(
            std::move(handler), std::vector<RateLimiter*>{nic, ingress[i]},
            std::vector<RateLimiter*>{}));
        ptrs.push_back(transports.back().get());
      }
      CdstoreClient client(ptrs, 1000 + c, ClientOptions{});
      Bytes data = RandomData(bytes_per_client, 7000 + c);  // unique per client
      Stopwatch w1;
      CHECK_OK(client.Upload("/c" + std::to_string(c) + "/uniq", data));
      uniq_compute = std::max(uniq_compute, w1.ElapsedSeconds());
      Stopwatch w2;
      CHECK_OK(client.Upload("/c" + std::to_string(c) + "/dup", data));
      dup_compute = std::max(dup_compute, w2.ElapsedSeconds());
    }

    // Split virtual link time between the two phases is not tracked
    // per-phase; rerun accounting: uniq phase moved all share bytes, dup
    // phase almost none. Approximate: all accumulated link seconds belong
    // to the uniq phase; dup is compute/CPU-bound.
    double link_seconds = 0;
    for (auto& l : lan.owned) {
      link_seconds = std::max(link_seconds, l->simulated_seconds());
    }
    double uniq_secs = std::max(uniq_compute, link_seconds);
    double cpu_seconds = 0;
    for (RateLimiter* q : cpu) {
      cpu_seconds = std::max(cpu_seconds, q->simulated_seconds());
    }
    double dup_secs = std::max(dup_compute, cpu_seconds * 0.5);  // dup ~ half the traffic

    uint64_t total = static_cast<uint64_t>(m) * bytes_per_client;
    std::printf("%-10d %-18.1f %-18.1f\n", m, ToMiBps(total, uniq_secs),
                ToMiBps(total, dup_secs));
  }
  std::printf("\nPaper: uniq 1 client ~77 -> 8 clients 282 (disk-bound; 310 w/o disk);\n"
              "       dup rises to 572 with a knee at 4 clients (server CPU).\n");
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
