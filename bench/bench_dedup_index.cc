// Dedup-index scale bench (ISSUE 10's acceptance bar): loads millions of
// fingerprints across thousands of synthetic users into a share index,
// then measures the FpQuery lookup path with the accel off and on —
// negative lookups (the common new-fingerprint case a backup upload is
// made of) and hot positive lookups (popular cross-generation shares) —
// reporting per-request p50/p99, accel memory per fingerprint, and the
// cold-start bloom-rebuild time as BENCH_JSON lines.
//
// Flags: --fps=10000000 --users=4096 --queries=400000 --batch=64
//        --threads=4 --stripes=0 --cache_mb=32 --bloom_bits=10
//        --hot=65536 --min_p99_speedup=0
//
// The CI smoke runs --fps=200000; the full 10M-fingerprint run is the
// scale point the ROADMAP's millions-of-users item asks for.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/server.h"
#include "src/dedup/index_accel.h"
#include "src/dedup/share_index.h"
#include "src/kvstore/db.h"
#include "src/net/message.h"
#include "src/storage/backend.h"
#include "src/util/fs_util.h"
#include "src/util/logging.h"

namespace cdstore {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic 32-byte fingerprint for index slot `i`: the load and query
// phases regenerate fingerprints on the fly instead of holding 10M x 32
// bytes in RAM. Not a real SHA-256, but splitmix output is uniform, which
// is all striping, bloom probes, and LSM ordering care about.
Fingerprint SyntheticFp(uint64_t i) {
  Fingerprint fp(kFingerprintSize);
  for (int w = 0; w < 4; ++w) {
    uint64_t v = SplitMix64(i * 4 + w + 1);
    std::memcpy(fp.data() + w * 8, &v, 8);
  }
  return fp;
}

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
};

LatencyStats Percentiles(std::vector<uint64_t>& ns) {
  LatencyStats out;
  if (ns.empty()) {
    return out;
  }
  std::sort(ns.begin(), ns.end());
  out.p50_us = static_cast<double>(ns[ns.size() / 2]) / 1000.0;
  out.p99_us = static_cast<double>(ns[std::min(ns.size() - 1, ns.size() * 99 / 100)]) / 1000.0;
  uint64_t total = 0;
  for (uint64_t v : ns) {
    total += v;
  }
  out.mean_us = static_cast<double>(total) / ns.size() / 1000.0;
  return out;
}

struct BenchConfig {
  uint64_t fps;
  uint64_t users;
  uint64_t queries;
  size_t batch;
  int threads;
  size_t stripes;
  size_t cache_mb;
  int bloom_bits;
  uint64_t hot;
};

// Pre-encoded FpQuery frames: frame construction must not sit inside the
// timed region. `negative` picks fingerprints past the loaded range;
// positive frames draw from user 1's hot set (slots ≡ 0 mod users) so
// UserHasShare walks the full owner-check path.
std::vector<Bytes> EncodeFrames(const BenchConfig& cfg, uint64_t count, bool negative,
                                uint64_t seed) {
  std::vector<Bytes> frames;
  uint64_t n_frames = (count + cfg.batch - 1) / cfg.batch;
  frames.reserve(n_frames);
  uint64_t hot_slots = std::max<uint64_t>(1, std::min(cfg.hot, cfg.fps / cfg.users));
  uint64_t cursor = 0;
  for (uint64_t f = 0; f < n_frames; ++f) {
    FpQueryRequest req;
    req.user = 1;
    req.fps.reserve(cfg.batch);
    for (size_t b = 0; b < cfg.batch; ++b) {
      if (negative) {
        req.fps.push_back(SyntheticFp(cfg.fps + cursor++));
      } else {
        uint64_t j = SplitMix64(seed + cursor++) % hot_slots;
        req.fps.push_back(SyntheticFp(j * cfg.users));  // slot owned by user 1
      }
    }
    frames.push_back(Encode(req));
  }
  return frames;
}

// Fires `frames` at the server from cfg.threads threads (disjoint slices)
// and returns per-request latencies. Multi-threaded on purpose: accel-off,
// every Get funnels through the Db-wide mutex, and that convoying is
// exactly what the accel's lock-free bloom removes from the p99.
std::vector<uint64_t> RunQueries(CdstoreServer* server, const BenchConfig& cfg,
                                 const std::vector<Bytes>& frames, uint64_t* duplicates) {
  std::vector<std::vector<uint64_t>> lat(cfg.threads);
  std::vector<uint64_t> dup(cfg.threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t]() {
      lat[t].reserve(frames.size() / cfg.threads + 1);
      for (size_t f = t; f < frames.size(); f += cfg.threads) {
        auto t0 = Clock::now();
        Bytes reply_frame = server->Handle(frames[f]);
        lat[t].push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count()));
        FpQueryReply reply;
        CHECK(Decode(reply_frame, &reply).ok());
        for (uint8_t d : reply.duplicate) {
          dup[t] += d;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  std::vector<uint64_t> merged;
  for (auto& v : lat) {
    merged.insert(merged.end(), v.begin(), v.end());
  }
  if (duplicates != nullptr) {
    *duplicates = 0;
    for (uint64_t d : dup) {
      *duplicates += d;
    }
  }
  return merged;
}

int Run(int argc, char** argv) {
  BenchConfig cfg;
  cfg.fps = static_cast<uint64_t>(FlagValue(argc, argv, "fps", 10'000'000));
  cfg.users = std::max<uint64_t>(1, static_cast<uint64_t>(FlagValue(argc, argv, "users", 4096)));
  cfg.queries = static_cast<uint64_t>(FlagValue(argc, argv, "queries", 400'000));
  cfg.batch = std::max<size_t>(1, static_cast<size_t>(FlagValue(argc, argv, "batch", 64)));
  cfg.threads = std::max(1, static_cast<int>(FlagValue(argc, argv, "threads", 4)));
  cfg.stripes = static_cast<size_t>(FlagValue(argc, argv, "stripes", 0));
  cfg.cache_mb = static_cast<size_t>(FlagValue(argc, argv, "cache_mb", 32));
  cfg.bloom_bits = static_cast<int>(FlagValue(argc, argv, "bloom_bits", 10));
  cfg.hot = static_cast<uint64_t>(FlagValue(argc, argv, "hot", 65536));
  double min_p99_speedup = FlagValue(argc, argv, "min_p99_speedup", 0);

  TempDir dir("dedup_index");
  std::string index_dir = dir.Sub("index");

  PrintHeader("dedup index scale: load " + std::to_string(cfg.fps) + " fingerprints, " +
              std::to_string(cfg.users) + " users");

  // ---- load phase -------------------------------------------------------
  // Bulk-load tuning: a big write buffer and an unreachable compaction
  // trigger avoid O(n^2) rewrites mid-load; one CompactAll at the end
  // leaves a single fully-bloomed SSTable — the best accel-off baseline
  // we can offer (steady state after background compaction).
  {
    DbOptions load_opts;
    load_opts.write_buffer_size = 64 << 20;
    load_opts.compaction_trigger = 1 << 20;
    auto db = Db::Open(index_dir, load_opts);
    CHECK(db.ok());
    ShareIndex index(db.value().get());
    auto t0 = Clock::now();
    constexpr uint64_t kLoadBatch = 8192;
    std::vector<std::pair<Fingerprint, ShareIndexEntry>> batch;
    batch.reserve(kLoadBatch);
    for (uint64_t i = 0; i < cfg.fps; ++i) {
      ShareIndexEntry e;
      e.location = {i / 1000 + 1, static_cast<uint32_t>(i % 1000),
                    static_cast<uint32_t>(512 + i % 4096)};
      e.owners[1 + (i % cfg.users)] = 1;
      batch.emplace_back(SyntheticFp(i), std::move(e));
      if (batch.size() == kLoadBatch || i + 1 == cfg.fps) {
        CHECK(index.PutEntries(batch).ok());
        batch.clear();
      }
      if ((i + 1) % 2'000'000 == 0) {
        std::printf("  loaded %lluM fingerprints (%.1fs)\n",
                    static_cast<unsigned long long>((i + 1) / 1'000'000), SecondsSince(t0));
      }
    }
    double load_s = SecondsSince(t0);
    auto tc = Clock::now();
    CHECK(db.value()->CompactAll().ok());
    double compact_s = SecondsSince(tc);
    std::printf("  load %.1fs (%.0f fps/s), final compaction %.1fs\n", load_s,
                cfg.fps / std::max(load_s, 1e-9), compact_s);
    std::printf("BENCH_JSON {\"bench\":\"dedup_index_load\",\"fps\":%llu,\"users\":%llu,"
                "\"load_s\":%.2f,\"compact_s\":%.2f}\n",
                static_cast<unsigned long long>(cfg.fps),
                static_cast<unsigned long long>(cfg.users), load_s, compact_s);
  }

  // Query frames are shared by both servers (identical workload, the
  // apples-to-apples the acceptance bar asks for).
  std::vector<Bytes> neg_frames = EncodeFrames(cfg, cfg.queries, /*negative=*/true, 7);
  std::vector<Bytes> pos_frames = EncodeFrames(cfg, cfg.queries, /*negative=*/false, 13);

  ServerOptions base;
  base.index_dir = index_dir;
  base.share_index_stripes = cfg.stripes;
  base.dedup_bloom_bits_per_key = cfg.bloom_bits;
  base.dedup_cache_bytes = cfg.cache_mb << 20;
  // The loaded LSM is already one compacted SSTable; keep the server's Db
  // from re-compacting it mid-measurement.
  base.db.compaction_trigger = 1 << 20;
  base.db.write_buffer_size = 64 << 20;

  struct ModeResult {
    LatencyStats neg;
    LatencyStats pos;
    uint64_t neg_dups = 0;
    uint64_t pos_dups = 0;
  };
  auto measure = [&](CdstoreServer* server) {
    ModeResult r;
    std::vector<uint64_t> lat = RunQueries(server, cfg, neg_frames, &r.neg_dups);
    r.neg = Percentiles(lat);
    lat = RunQueries(server, cfg, pos_frames, &r.pos_dups);
    r.pos = Percentiles(lat);
    return r;
  };

  // ---- accel OFF baseline ----------------------------------------------
  ModeResult off;
  {
    MemBackend backend;
    ServerOptions so = base;
    so.dedup_accel = false;
    auto server = CdstoreServer::Create(&backend, so);
    CHECK(server.ok());
    off = measure(server.value().get());
    std::printf("  accel-off: negative p50 %.1fus p99 %.1fus | positive p50 %.1fus p99 %.1fus\n",
                off.neg.p50_us, off.neg.p99_us, off.pos.p50_us, off.pos.p99_us);
  }

  // ---- accel ON ---------------------------------------------------------
  ModeResult on;
  uint64_t rebuild_ms = 0;
  double create_s = 0;
  uint64_t accel_bytes = 0;
  DedupAccelStats accel_stats;
  size_t stripe_count = 0;
  {
    MemBackend backend;
    ServerOptions so = base;
    so.dedup_accel = true;
    auto t0 = Clock::now();
    auto server = CdstoreServer::Create(&backend, so);
    create_s = SecondsSince(t0);
    CHECK(server.ok());
    DedupIndexAccel* accel = server.value()->dedup_accel();
    CHECK(accel != nullptr);
    rebuild_ms = accel->stats().rebuild_ns / 1'000'000;
    stripe_count = server.value()->share_stripe_count();
    on = measure(server.value().get());
    accel_stats = accel->stats();
    accel_bytes = accel->memory_bytes();
    std::printf("  accel-on:  negative p50 %.1fus p99 %.1fus | positive p50 %.1fus p99 %.1fus\n",
                on.neg.p50_us, on.neg.p99_us, on.pos.p50_us, on.pos.p99_us);
    std::printf("  cold start: create %.2fs (bloom rebuild %llums, %llu keys), "
                "%zu stripes, accel %.1f MiB (%.2f bytes/fp)\n",
                create_s, static_cast<unsigned long long>(rebuild_ms),
                static_cast<unsigned long long>(accel_stats.rebuild_keys), stripe_count,
                accel_bytes / 1048576.0, static_cast<double>(accel_bytes) / cfg.fps);
  }

  // Correctness cross-check: both servers saw the identical duplicate
  // verdicts, and the negative workload is genuinely negative (bloom false
  // positives answer through the LSM, never flip a verdict).
  CHECK_EQ(off.neg_dups, on.neg_dups);
  CHECK_EQ(off.pos_dups, on.pos_dups);
  CHECK_EQ(on.neg_dups, 0u);

  double bytes_per_fp = static_cast<double>(accel_bytes) / cfg.fps;
  double neg_p99_speedup = on.neg.p99_us > 0 ? off.neg.p99_us / on.neg.p99_us : 0;
  double pos_p99_speedup = on.pos.p99_us > 0 ? off.pos.p99_us / on.pos.p99_us : 0;

  std::printf("BENCH_JSON {\"bench\":\"dedup_index_coldstart\",\"fps\":%llu,"
              "\"create_s\":%.2f,\"bloom_rebuild_ms\":%llu,\"accel_bytes\":%llu,"
              "\"bytes_per_fp\":%.2f,\"stripes\":%zu}\n",
              static_cast<unsigned long long>(cfg.fps), create_s,
              static_cast<unsigned long long>(rebuild_ms),
              static_cast<unsigned long long>(accel_bytes), bytes_per_fp, stripe_count);
  std::printf("BENCH_JSON {\"bench\":\"dedup_index_negative\",\"fps\":%llu,\"batch\":%zu,"
              "\"threads\":%d,\"off_p50_us\":%.1f,\"off_p99_us\":%.1f,\"on_p50_us\":%.1f,"
              "\"on_p99_us\":%.1f,\"p99_speedup\":%.2f}\n",
              static_cast<unsigned long long>(cfg.fps), cfg.batch, cfg.threads, off.neg.p50_us,
              off.neg.p99_us, on.neg.p50_us, on.neg.p99_us, neg_p99_speedup);
  std::printf("BENCH_JSON {\"bench\":\"dedup_index_positive\",\"fps\":%llu,\"hot\":%llu,"
              "\"off_p50_us\":%.1f,\"off_p99_us\":%.1f,\"on_p50_us\":%.1f,\"on_p99_us\":%.1f,"
              "\"p99_speedup\":%.2f,\"cache_hits\":%llu,\"cache_misses\":%llu}\n",
              static_cast<unsigned long long>(cfg.fps),
              static_cast<unsigned long long>(cfg.hot), off.pos.p50_us, off.pos.p99_us,
              on.pos.p50_us, on.pos.p99_us, pos_p99_speedup,
              static_cast<unsigned long long>(accel_stats.cache_hits),
              static_cast<unsigned long long>(accel_stats.cache_misses));
  std::printf("BENCH_JSON {\"bench\":\"dedup_index_summary\",\"fps\":%llu,"
              "\"neg_p99_speedup\":%.2f,\"pos_p99_speedup\":%.2f,\"bytes_per_fp\":%.2f,"
              "\"bloom_negative\":%llu,\"bloom_false_positive\":%llu}\n",
              static_cast<unsigned long long>(cfg.fps), neg_p99_speedup, pos_p99_speedup,
              bytes_per_fp, static_cast<unsigned long long>(accel_stats.bloom_negative),
              static_cast<unsigned long long>(accel_stats.bloom_false_positive));

  if (min_p99_speedup > 0 && neg_p99_speedup < min_p99_speedup) {
    std::fprintf(stderr, "FAIL: negative p99 speedup %.2f below required %.2f\n",
                 neg_p99_speedup, min_p99_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) { return cdstore::Run(argc, argv); }
