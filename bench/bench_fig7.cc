// Reproduces Figure 7: single-client upload/download speeds on the LAN and
// cloud testbeds, (n,k)=(4,3).
//   7(a) baseline: 2GB unique data, then the same 2GB again (duplicate),
//        then download from k=3 clouds.
//   7(b) trace-driven: FSL-like weekly backups (first vs subsequent weeks)
//        and their restore.
//
// Network time is simulated (virtual clocks on shared rate limiters — the
// client NIC for the LAN testbed; per-cloud Internet paths plus the
// client's aggregate uplink for the cloud testbed), while chunking,
// encoding, dedup and container management all execute for real. Reported
// speed = bytes / max(compute time, bottleneck link time), i.e. an ideally
// pipelined client.
//
// Paper (MB/s): LAN  77.5 uniq / 149.9 dup / 99.2 down
//               Cloud 6.2 uniq /  57.1 dup / 12.3 down
//               Trace (LAN): 92.3 first / 145.1 subseq / 89.6 down
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cloud/profiles.h"
#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/trace/synthetic.h"
#include "src/util/fs_util.h"
#include "src/util/logging.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

constexpr int kN = 4;
constexpr int kK = 3;

struct Testbed {
  std::vector<std::unique_ptr<MemBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<RateLimiter>> limiters;  // owns all link models
  std::vector<std::unique_ptr<InProcTransport>> transports;
  std::vector<RateLimiter*> all_links;

  std::vector<Transport*> TransportPtrs() {
    std::vector<Transport*> out;
    for (auto& t : transports) {
      out.push_back(t.get());
    }
    return out;
  }

  double MaxLinkSeconds() const {
    double worst = 0;
    for (RateLimiter* l : all_links) {
      worst = std::max(worst, l->simulated_seconds());
    }
    return worst;
  }

  void ResetLinks() {
    for (RateLimiter* l : all_links) {
      l->ResetSimulatedClock();
    }
  }
};

std::unique_ptr<RateLimiter> MakeLink(double mbps, Testbed* bed) {
  auto limiter =
      std::make_unique<RateLimiter>(static_cast<uint64_t>(mbps * 1024 * 1024));
  limiter->set_simulated(true);
  bed->all_links.push_back(limiter.get());
  return limiter;
}

// LAN testbed: every server behind the client's single 1Gb/s NIC
// (~110MB/s effective, §5.5).
Testbed MakeLanTestbed(const std::string& dir) {
  Testbed bed;
  auto up = MakeLink(110.0, &bed);
  auto down = MakeLink(110.0, &bed);
  for (int i = 0; i < kN; ++i) {
    bed.backends.push_back(std::make_unique<MemBackend>());
    ServerOptions so;
    so.index_dir = dir + "/lan-server" + std::to_string(i);
    auto server = CdstoreServer::Create(bed.backends.back().get(), so);
    CHECK_OK(server.status());
    bed.servers.push_back(std::move(server.value()));
    bed.transports.push_back(std::make_unique<InProcTransport>(
        bed.servers.back()->AsHandler(), std::vector<RateLimiter*>{up.get()},
        std::vector<RateLimiter*>{down.get()}));
  }
  bed.limiters.push_back(std::move(up));
  bed.limiters.push_back(std::move(down));
  return bed;
}

// Cloud testbed: per-cloud Internet paths (Table 2) plus the client's
// aggregate uplink/downlink, which §5.5's measurements imply saturates
// around 8.5/14.5 MB/s when all clouds transfer concurrently.
Testbed MakeCloudTestbed(const std::string& dir) {
  Testbed bed;
  auto agg_up = MakeLink(8.5, &bed);
  auto agg_down = MakeLink(14.5, &bed);
  auto profiles = Table2CloudProfiles();
  for (int i = 0; i < kN; ++i) {
    bed.backends.push_back(std::make_unique<MemBackend>());
    ServerOptions so;
    so.index_dir = dir + "/cloud-server" + std::to_string(i);
    auto server = CdstoreServer::Create(bed.backends.back().get(), so);
    CHECK_OK(server.status());
    bed.servers.push_back(std::move(server.value()));
    auto cloud_up = MakeLink(profiles[i].upload_mbps, &bed);
    auto cloud_down = MakeLink(profiles[i].download_mbps, &bed);
    bed.transports.push_back(std::make_unique<InProcTransport>(
        bed.servers.back()->AsHandler(),
        std::vector<RateLimiter*>{agg_up.get(), cloud_up.get()},
        std::vector<RateLimiter*>{agg_down.get(), cloud_down.get()}));
    bed.limiters.push_back(std::move(cloud_up));
    bed.limiters.push_back(std::move(cloud_down));
  }
  bed.limiters.push_back(std::move(agg_up));
  bed.limiters.push_back(std::move(agg_down));
  return bed;
}

struct Speeds {
  // end-to-end on this host: bytes / max(compute, slowest link)
  double up_uniq, up_dup, down;
  // link-bound projection: bytes / slowest link time — what a host with
  // the paper's parallel CPU headroom would see. 0 when no link is
  // exercised (duplicate uploads transfer no shares).
  double up_uniq_net, down_net;
};

Speeds RunBaseline(Testbed* bed, size_t bytes) {
  CdstoreClient client(bed->TransportPtrs(), 1, ClientOptions{});
  Bytes data = RandomData(bytes, 99);
  Speeds out{};

  bed->ResetLinks();
  Stopwatch watch;
  CHECK_OK(client.Upload("/bench/uniq", data));
  out.up_uniq = ToMiBps(bytes, std::max(watch.ElapsedSeconds(), bed->MaxLinkSeconds()));
  out.up_uniq_net = ToMiBps(bytes, bed->MaxLinkSeconds());

  bed->ResetLinks();
  watch.Reset();
  CHECK_OK(client.Upload("/bench/dup", data));
  out.up_dup = ToMiBps(bytes, std::max(watch.ElapsedSeconds(), bed->MaxLinkSeconds()));

  bed->ResetLinks();
  watch.Reset();
  auto restored = client.Download("/bench/uniq");
  CHECK_OK(restored.status());
  CHECK_EQ(restored.value().size(), bytes);
  out.down = ToMiBps(bytes, std::max(watch.ElapsedSeconds(), bed->MaxLinkSeconds()));
  out.down_net = ToMiBps(bytes, bed->MaxLinkSeconds());
  return out;
}

struct TraceSpeeds {
  double up_first, up_subsequent, down;
};

TraceSpeeds RunTrace(Testbed* bed, double scale, int weeks) {
  auto opts = SyntheticDataset::FslDefaults(scale);
  opts.num_users = 1;
  opts.num_weeks = weeks;
  SyntheticDataset dataset(opts);
  CdstoreClient client(bed->TransportPtrs(), 2, ClientOptions{});
  TraceSpeeds out{};
  uint64_t sub_bytes = 0;
  double sub_seconds = 0;
  for (int w = 0; w < weeks; ++w) {
    Bytes file = dataset.FileFor(0, w);
    bed->ResetLinks();
    Stopwatch watch;
    CHECK_OK(client.Upload("/trace/week" + std::to_string(w), file));
    double secs = std::max(watch.ElapsedSeconds(), bed->MaxLinkSeconds());
    if (w == 0) {
      out.up_first = ToMiBps(file.size(), secs);
    } else {
      sub_bytes += file.size();
      sub_seconds += secs;
    }
  }
  out.up_subsequent = ToMiBps(sub_bytes, sub_seconds);

  uint64_t down_bytes = 0;
  double down_seconds = 0;
  for (int w = 0; w < weeks; ++w) {
    bed->ResetLinks();
    Stopwatch watch;
    auto restored = client.Download("/trace/week" + std::to_string(w));
    CHECK_OK(restored.status());
    down_bytes += restored.value().size();
    down_seconds += std::max(watch.ElapsedSeconds(), bed->MaxLinkSeconds());
  }
  out.down = ToMiBps(down_bytes, down_seconds);
  return out;
}

void Run(int argc, char** argv) {
  const size_t bytes = static_cast<size_t>(FlagValue(argc, argv, "size_mb", 24)) * 1024 * 1024;
  const double trace_scale = FlagValue(argc, argv, "trace_scale", 4.0);
  TempDir dir("fig7");

  PrintHeader("Figure 7(a): single-client baseline transfer speeds (MB/s)");
  Testbed lan = MakeLanTestbed(dir.path());
  Speeds lan_speeds = RunBaseline(&lan, bytes);
  Testbed cloud = MakeCloudTestbed(dir.path());
  Speeds cloud_speeds = RunBaseline(&cloud, bytes);
  std::printf("%-8s %-14s %-14s %-12s %-22s\n", "Testbed", "Upload(uniq)", "Upload(dup)",
              "Download", "[net-bound: uniq/down]");
  std::printf("%-8s %-14.1f %-14.1f %-12.1f [%.1f / %.1f]\n", "LAN", lan_speeds.up_uniq,
              lan_speeds.up_dup, lan_speeds.down, lan_speeds.up_uniq_net, lan_speeds.down_net);
  std::printf("%-8s %-14.1f %-14.1f %-12.1f [%.1f / %.1f]\n", "Cloud", cloud_speeds.up_uniq,
              cloud_speeds.up_dup, cloud_speeds.down, cloud_speeds.up_uniq_net,
              cloud_speeds.down_net);
  std::printf("Paper:   LAN 77.5 / 149.9 / 99.2    Cloud 6.2 / 57.1 / 12.3\n");
  std::printf("Shape checks: net-bound uniq ≈ (k/n)·link on LAN; dup bound by compute\n"
              "              (single-core host serializes client+servers — the paper's\n"
              "              testbed ran them on separate quad-cores); cloud dup >> uniq.\n");

  PrintHeader("Figure 7(b): trace-driven speeds, FSL-like weekly backups (MB/s)");
  Testbed lan2 = MakeLanTestbed(dir.path() + "/t2");
  TraceSpeeds lan_trace = RunTrace(&lan2, trace_scale, 4);
  Testbed cloud2 = MakeCloudTestbed(dir.path() + "/t3");
  TraceSpeeds cloud_trace = RunTrace(&cloud2, trace_scale / 4, 2);
  std::printf("%-8s %-14s %-16s %-12s\n", "Testbed", "Upload(first)", "Upload(subsqt)",
              "Download");
  std::printf("%-8s %-14.1f %-16.1f %-12.1f\n", "LAN", lan_trace.up_first,
              lan_trace.up_subsequent, lan_trace.down);
  std::printf("%-8s %-14.1f %-16.1f %-12.1f\n", "Cloud", cloud_trace.up_first,
              cloud_trace.up_subsequent, cloud_trace.down);
  std::printf("Paper:   LAN 92.3 / 145.1 / 89.6    Cloud 6.9 / 56.2 / 9.5\n");
  std::printf("Shape checks: first > uniq (intra-file dups); subsequent ≈ dup;\n"
              "              download slightly below baseline (fragmentation).\n");
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
