// Reproduces Figure 5(a): encoding speed of a CDStore client versus the
// number of encoding threads, (n,k)=(4,3), for CAONT-RS vs AONT-RS vs
// CAONT-RS-Rivest. Also prints the §5.3 relative-speedup claims.
//
// Paper reference (quad-core machines): CAONT-RS ~83MB/s (Xeon) /
// ~183MB/s (i5) at 2 threads; CAONT-RS faster than AONT-RS by 12-35%
// and than CAONT-RS-Rivest by 40-61%.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/chunking/chunker.h"
#include "src/core/coding_pipeline.h"
#include "src/dispersal/registry.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

std::vector<Bytes> MakeSecrets(size_t total_bytes) {
  Bytes data = RandomData(total_bytes);
  RabinChunker chunker{RabinChunkerOptions{}};  // 2/8/16KB, as in §4.2
  return ChunkBuffer(chunker, data);
}

double EncodeSpeed(SecretSharing* scheme, const std::vector<Bytes>& secrets, int threads,
                   size_t total_bytes) {
  CodingPipeline pipeline(scheme, threads);
  std::vector<std::vector<Bytes>> shares;
  Stopwatch watch;
  Status st = pipeline.EncodeAll(secrets, &shares);
  double secs = watch.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "encode failed: %s\n", st.ToString().c_str());
    return 0;
  }
  return ToMiBps(total_bytes, secs);
}

void Run(int argc, char** argv) {
  const size_t total_bytes =
      static_cast<size_t>(FlagValue(argc, argv, "size_mb", 32)) * 1024 * 1024;
  const int max_threads = static_cast<int>(FlagValue(argc, argv, "max_threads", 4));

  auto secrets = MakeSecrets(total_bytes);
  PrintHeader("Figure 5(a): encoding speed vs #threads, (n,k)=(4,3)");
  std::printf("(this host; paper used quad-core Xeon E5530 / i5-3570)\n");
  std::printf("%-8s %-14s %-14s %-18s\n", "Threads", "CAONT-RS", "AONT-RS", "CAONT-RS-Rivest");

  SchemeParams p{.n = 4, .k = 3, .r = 1, .salt = {}};
  auto caont = std::move(MakeScheme(SchemeType::kCaontRs, p).value());
  auto aont = std::move(MakeScheme(SchemeType::kAontRs, p).value());
  auto rivest = std::move(MakeScheme(SchemeType::kCaontRsRivest, p).value());

  double caont2 = 0, aont2 = 0, rivest2 = 0;
  for (int t = 1; t <= max_threads; ++t) {
    double sc = EncodeSpeed(caont.get(), secrets, t, total_bytes);
    double sa = EncodeSpeed(aont.get(), secrets, t, total_bytes);
    double sr = EncodeSpeed(rivest.get(), secrets, t, total_bytes);
    if (t == 2) {
      caont2 = sc;
      aont2 = sa;
      rivest2 = sr;
    }
    std::printf("%-8d %-14.1f %-14.1f %-18.1f\n", t, sc, sa, sr);
  }

  PrintHeader("§5.3 claims at 2 threads");
  std::printf("CAONT-RS vs AONT-RS:          +%.0f%%  (paper: +12~35%%)\n",
              100.0 * (caont2 / aont2 - 1));
  std::printf("CAONT-RS vs CAONT-RS-Rivest:  +%.0f%%  (paper: +40~61%%)\n",
              100.0 * (caont2 / rivest2 - 1));

  // Combined chunking + encoding (§5.3: drops ~16%).
  Bytes data = RandomData(total_bytes, 7);
  CodingPipeline pipeline(caont.get(), 2);
  Stopwatch watch;
  RabinChunker chunker{RabinChunkerOptions{}};
  auto fresh_secrets = ChunkBuffer(chunker, data);
  std::vector<std::vector<Bytes>> shares;
  (void)pipeline.EncodeAll(fresh_secrets, &shares);
  double combined = ToMiBps(total_bytes, watch.ElapsedSeconds());
  std::printf("Combined chunking+encoding:   %.1f MB/s = %.0f%% of encode-only "
              "(paper: ~84%%)\n",
              combined, 100.0 * combined / caont2);
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
