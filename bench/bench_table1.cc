// Reproduces Table 1: comparison of secret sharing algorithms —
// confidentiality degree r and storage blowup, with the theoretical formula
// checked against the measured blowup of the implementation, plus measured
// encode/decode throughput as context.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/dispersal/registry.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

void Run(int argc, char** argv) {
  const int n = 4, k = 3, r = 1;
  const size_t secret_size = static_cast<size_t>(FlagValue(argc, argv, "secret_kb", 8) * 1024);
  const size_t total_mb = static_cast<size_t>(FlagValue(argc, argv, "size_mb", 16));
  const size_t num_secrets = total_mb * 1024 * 1024 / secret_size;

  PrintHeader("Table 1: secret sharing algorithms, (n,k)=(4,3), 8KB secrets");
  std::printf("%-16s %-14s %-18s %-18s %-12s %-12s\n", "Algorithm", "Conf. degree",
              "Blowup (theory)", "Blowup (measured)", "Enc MB/s", "Dec MB/s");

  struct Row {
    SchemeType type;
    const char* theory;
    double theory_value;
  };
  const double skey_ratio = 32.0 / static_cast<double>(secret_size);
  std::vector<Row> rows = {
      {SchemeType::kSsss, "n", 4.0},
      {SchemeType::kIda, "n/k", 4.0 / 3},
      {SchemeType::kRsss, "n/(k-r)", 4.0 / 2},
      {SchemeType::kSsms, "n/k + n*Skey/Ssec", 4.0 / 3 + 4 * skey_ratio},
      {SchemeType::kAontRs, "n/k+(n/k)Skey/Ssec", (4.0 / 3) * (1 + 48.0 / secret_size)},
      {SchemeType::kCaontRsRivest, "n/k+(n/k)Sh/Ssec", (4.0 / 3) * (1 + 48.0 / secret_size)},
      {SchemeType::kCaontRs, "n/k+(n/k)Sh/Ssec", (4.0 / 3) * (1 + skey_ratio)},
  };

  Bytes secret = RandomData(secret_size);
  for (const Row& row : rows) {
    SchemeParams p{.n = n, .k = k, .r = r, .salt = {}};
    auto scheme = MakeScheme(row.type, p);
    if (!scheme.ok()) {
      std::printf("%-16s <construction failed: %s>\n", SchemeTypeName(row.type),
                  scheme.status().ToString().c_str());
      continue;
    }
    SecretSharing& s = *scheme.value();
    double measured = s.StorageBlowup(secret_size);

    // Throughput.
    Stopwatch enc_watch;
    std::vector<Bytes> shares;
    for (size_t i = 0; i < num_secrets; ++i) {
      (void)s.Encode(secret, &shares);
    }
    double enc_s = enc_watch.ElapsedSeconds();

    std::vector<int> ids = {0, 1, 2};
    std::vector<Bytes> subset = {shares[0], shares[1], shares[2]};
    Stopwatch dec_watch;
    Bytes out;
    for (size_t i = 0; i < num_secrets; ++i) {
      (void)s.Decode(ids, subset, secret_size, &out);
    }
    double dec_s = dec_watch.ElapsedSeconds();

    char conf[16];
    std::snprintf(conf, sizeof(conf), "r = %d", s.r());
    std::printf("%-16s %-14s %-18s %-18.4f %-12.1f %-12.1f\n", s.name().c_str(), conf,
                row.theory, measured, ToMiBps(num_secrets * secret_size, enc_s),
                ToMiBps(num_secrets * secret_size, dec_s));
    if (std::abs(measured - row.theory_value) / row.theory_value > 0.05) {
      std::printf("    NOTE: measured blowup deviates >5%% from theory (%.4f vs %.4f)\n",
                  measured, row.theory_value);
    }
  }
  std::printf("\nPaper (Table 1): SSSS n | IDA n/k | RSSS n/(k-r) | SSMS n/k+n*Skey/Ssec |"
              " AONT-RS n/k+(n/k)*Skey/Ssec\n");
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
