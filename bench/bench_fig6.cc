// Reproduces Figure 6: deduplication efficiency of CDStore on the FSL-like
// and VM-like weekly backup workloads, (n,k)=(4,3).
//   6(a) intra-user and inter-user dedup savings per week
//   6(b) cumulative logical data / logical shares / transferred shares /
//        physical shares
//
// Share-level dedup is computed from chunk fingerprints: convergent
// dispersal is deterministic, so two shares are identical exactly when
// their secrets are identical (a property verified by the test suite),
// which lets this harness sweep 16 weeks x all users in seconds while
// reporting the exact sizes the full system would produce.
//
// Paper reference: FSL intra >= 94.2% after week 1, inter <= 12.9%;
// VM week-1 inter 93.4%, later 11.8-47%, intra >= 98%. After 16 weeks the
// physical shares are ~6.3% (FSL) and ~0.8% (VM) of logical data.
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "src/chunking/chunker.h"
#include "src/dedup/fingerprint.h"
#include "src/dispersal/aont_rs.h"
#include "src/trace/synthetic.h"
#include "src/util/stats.h"

namespace cdstore {
namespace {

struct WeekRow {
  double intra_saving;
  double inter_saving;
  uint64_t logical_data;
  uint64_t logical_shares;
  uint64_t transferred;
  uint64_t physical;
};

std::vector<WeekRow> RunDataset(const SyntheticDataset& dataset, bool fixed_chunking) {
  auto scheme = MakeCaontRs(4, 3);
  // Per-user fingerprint sets (intra-user dedup) and the global set
  // (inter-user dedup). One secret -> n shares of equal size; share-level
  // sizes scale by ShareSize().
  std::vector<std::set<Fingerprint>> user_sets(dataset.num_users());
  std::set<Fingerprint> global_set;
  std::vector<WeekRow> rows;
  uint64_t cum_logical = 0, cum_logical_shares = 0, cum_transferred = 0, cum_physical = 0;

  for (int week = 0; week < dataset.num_weeks(); ++week) {
    uint64_t week_logical_shares = 0, week_transferred = 0, week_physical = 0;
    for (int user = 0; user < dataset.num_users(); ++user) {
      Bytes file = dataset.FileFor(user, week);
      cum_logical += file.size();
      std::unique_ptr<Chunker> chunker;
      if (fixed_chunking) {
        chunker = std::make_unique<FixedChunker>(4096);  // VM dataset: 4KB fixed
      } else {
        chunker = std::make_unique<RabinChunker>(RabinChunkerOptions{});
      }
      auto chunks = ChunkBuffer(*chunker, file);
      for (const Bytes& chunk : chunks) {
        Fingerprint fp = FingerprintOf(chunk);
        uint64_t share_bytes = 4ull * scheme->ShareSize(chunk.size());
        week_logical_shares += share_bytes;
        if (user_sets[user].insert(fp).second) {
          // Unique for this user: transferred after intra-user dedup.
          week_transferred += share_bytes;
          if (global_set.insert(fp).second) {
            week_physical += share_bytes;  // globally unique: stored
          }
        }
      }
    }
    cum_logical_shares += week_logical_shares;
    cum_transferred += week_transferred;
    cum_physical += week_physical;
    WeekRow row;
    row.intra_saving =
        1.0 - static_cast<double>(week_transferred) / static_cast<double>(week_logical_shares);
    row.inter_saving =
        week_transferred == 0
            ? 0.0
            : 1.0 - static_cast<double>(week_physical) / static_cast<double>(week_transferred);
    row.logical_data = cum_logical;
    row.logical_shares = cum_logical_shares;
    row.transferred = cum_transferred;
    row.physical = cum_physical;
    rows.push_back(row);
  }
  return rows;
}

void PrintRows(const char* name, const std::vector<WeekRow>& rows) {
  PrintHeader(std::string("Figure 6(a): weekly dedup savings — ") + name);
  std::printf("%-6s %-16s %-16s\n", "Week", "Intra-user %", "Inter-user %");
  for (size_t w = 0; w < rows.size(); ++w) {
    std::printf("%-6zu %-16.1f %-16.1f\n", w + 1, 100 * rows[w].intra_saving,
                100 * rows[w].inter_saving);
  }
  PrintHeader(std::string("Figure 6(b): cumulative sizes — ") + name);
  std::printf("%-6s %-16s %-16s %-18s %-16s\n", "Week", "Logical data", "Logical shares",
              "Transferred", "Physical");
  for (size_t w = 0; w < rows.size(); ++w) {
    std::printf("%-6zu %-16s %-16s %-18s %-16s\n", w + 1,
                FormatSize(rows[w].logical_data).c_str(),
                FormatSize(rows[w].logical_shares).c_str(),
                FormatSize(rows[w].transferred).c_str(),
                FormatSize(rows[w].physical).c_str());
  }
  const WeekRow& last = rows.back();
  std::printf("\nPhysical/logical after %zu weeks: %.1f%%\n", rows.size(),
              100.0 * last.physical / last.logical_data);
}

void Run(int argc, char** argv) {
  double scale = FlagValue(argc, argv, "scale", 1.0);

  SyntheticDataset fsl(SyntheticDataset::FslDefaults(scale));
  auto fsl_rows = RunDataset(fsl, /*fixed_chunking=*/false);
  PrintRows("FSL (9 users, variable chunking)", fsl_rows);
  std::printf("Paper: intra >= 94.2%% after wk1, inter <= 12.9%%, physical ~6.3%%\n");

  SyntheticDataset vm(SyntheticDataset::VmDefaults(scale));
  auto vm_rows = RunDataset(vm, /*fixed_chunking=*/true);
  PrintRows("VM (24 users, 4KB fixed chunking; paper used 156 VMs)", vm_rows);
  std::printf("Paper: wk1 inter 93.4%% (156 VMs; fewer users -> lower ceiling), later "
              "11.8-47%%, intra >= 98%%, physical ~0.8%%\n");
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
