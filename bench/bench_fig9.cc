// Reproduces Figure 9: monetary cost savings of CDStore over (i) an
// AONT-RS multi-cloud system and (ii) a single-cloud system, using the
// September 2014 EC2/S3 pricing model (§5.6).
//   9(a) saving vs weekly backup size (0.25-256 TB), dedup ratio 10x
//   9(b) saving vs dedup ratio (1-50x), weekly backup 16 TB
//
// Paper: ~70% saving at 16TB/week and 10x dedup; 70-80% between 10x and
// 50x; curves jagged where the cheapest EC2 instance switches.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cost/cost_model.h"

namespace cdstore {
namespace {

void Run(int, char**) {
  PrintHeader("Figure 9(a): cost saving vs weekly backup size (dedup 10x, 26-week retention)");
  std::printf("%-12s %-16s %-18s %-14s %-12s %-14s\n", "Weekly TB", "vs AONT-RS %",
              "vs Single-cloud %", "CDStore $/mo", "VM $/mo", "EC2 instance");
  CostScenario s;
  s.dedup_ratio = 10;
  for (double tb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
    s.weekly_backup_tb = tb;
    CostBreakdown cd = CdstoreMonthlyCost(s);
    std::printf("%-12.2f %-16.1f %-18.1f %-14.0f %-12.0f %s x%d\n", tb,
                100 * SavingVsAontRs(s), 100 * SavingVsSingleCloud(s), cd.total_usd,
                cd.vm_usd, cd.instance.c_str(), cd.instances_per_cloud);
  }

  PrintHeader("Figure 9(b): cost saving vs dedup ratio (16 TB weekly)");
  std::printf("%-12s %-16s %-18s %-14s\n", "Dedup", "vs AONT-RS %", "vs Single-cloud %",
              "CDStore $/mo");
  s.weekly_backup_tb = 16;
  for (double d : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0}) {
    s.dedup_ratio = d;
    std::printf("%-12.0f %-16.1f %-18.1f %-14.0f\n", d, 100 * SavingVsAontRs(s),
                100 * SavingVsSingleCloud(s), CdstoreMonthlyCost(s).total_usd);
  }

  PrintHeader("§5.6 case study: 16TB weekly, dedup 10x");
  s.dedup_ratio = 10;
  s.weekly_backup_tb = 16;
  CostBreakdown single = SingleCloudMonthlyCost(s);
  CostBreakdown aont = AontRsMonthlyCost(s);
  CostBreakdown cd = CdstoreMonthlyCost(s);
  std::printf("Single-cloud: $%.0f/mo (paper ~$12,250)\n", single.total_usd);
  std::printf("AONT-RS:      $%.0f/mo (paper ~$16,400)\n", aont.total_usd);
  std::printf("CDStore:      $%.0f/mo storage $%.0f + VM $%.0f (paper ~$3,540 = $2,880+$660)\n",
              cd.total_usd, cd.storage_usd, cd.vm_usd);
  std::printf("Saving vs AONT-RS: %.0f%% (paper: >= 70%%)\n", 100 * SavingVsAontRs(s));
}

}  // namespace
}  // namespace cdstore

int main(int argc, char** argv) {
  cdstore::Run(argc, argv);
  return 0;
}
