// Interactive-ish cost explorer for the §5.6 monetary analysis: pass your
// organization's parameters on the command line and get the monthly bill
// of CDStore vs the two baselines under Sept-2014 AWS pricing.
//
//   ./examples/cost_explorer [weekly_tb] [dedup_ratio] [retention_weeks]
//   ./examples/cost_explorer 16 10 26
#include <cstdio>
#include <cstdlib>

#include "src/cost/cost_model.h"

using namespace cdstore;

int main(int argc, char** argv) {
  CostScenario s;
  if (argc > 1) s.weekly_backup_tb = std::atof(argv[1]);
  if (argc > 2) s.dedup_ratio = std::atof(argv[2]);
  if (argc > 3) s.retention_weeks = std::atoi(argv[3]);

  std::printf("CDStore cost explorer (Sept 2014 AWS pricing)\n");
  std::printf("==============================================\n");
  std::printf("weekly backup: %.2f TB   dedup ratio: %.0fx   retention: %d weeks   "
              "(n,k)=(%d,%d)\n\n",
              s.weekly_backup_tb, s.dedup_ratio, s.retention_weeks, s.n, s.k);
  std::printf("logical data under retention: %.1f TB\n\n",
              s.weekly_backup_tb * s.retention_weeks);

  CostBreakdown single = SingleCloudMonthlyCost(s);
  CostBreakdown aont = AontRsMonthlyCost(s);
  CostBreakdown cd = CdstoreMonthlyCost(s);

  std::printf("%-22s %-14s %-12s %-12s %-12s\n", "System", "Stored TB", "S3 $/mo", "EC2 $/mo",
              "Total $/mo");
  std::printf("%-22s %-14.1f %-12.0f %-12.0f %-12.0f\n", "Single cloud (no red.)",
              single.stored_tb, single.storage_usd, 0.0, single.total_usd);
  std::printf("%-22s %-14.1f %-12.0f %-12.0f %-12.0f\n", "AONT-RS multi-cloud",
              aont.stored_tb, aont.storage_usd, 0.0, aont.total_usd);
  std::printf("%-22s %-14.1f %-12.0f %-12.0f %-12.0f\n", "CDStore", cd.stored_tb,
              cd.storage_usd, cd.vm_usd, cd.total_usd);

  std::printf("\nCDStore VM choice: %d x %s per cloud (index %.1f GB per cloud)\n",
              cd.instances_per_cloud, cd.instance.c_str(), cd.index_gb_per_cloud);
  std::printf("\nSavings: %.1f%% vs AONT-RS, %.1f%% vs single cloud\n",
              100 * SavingVsAontRs(s), 100 * SavingVsSingleCloud(s));
  std::printf("(paper's case study at 16TB/10x/26wk: ~70%% vs AONT-RS)\n");
  return 0;
}
