// Interactive-ish cost explorer for the §5.6 monetary analysis: pass your
// organization's parameters on the command line and get the monthly bill
// of CDStore vs the two baselines under Sept-2014 AWS pricing.
//
// The dedup ratio can come from a MEASUREMENT instead of an assumption:
// point --bench-json at a file holding bench_generations output (its
// BENCH_JSON lines) and the generation_series_summary's measured
// logical/unique ratio replaces the default.
//
//   ./examples/cost_explorer [weekly_tb] [dedup_ratio] [retention_weeks]
//   ./examples/cost_explorer 16 10 26
//   ./build/bench_generations > /tmp/gen.json
//   ./examples/cost_explorer 16 --bench-json=/tmp/gen.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/cost/cost_model.h"

using namespace cdstore;

namespace {

// Pulls `"key":<number>` out of a BENCH_JSON line (the benches emit flat
// one-line objects; no JSON library needed for that).
bool ExtractNumber(const std::string& line, const std::string& key, double* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::atof(line.c_str() + pos + needle.size());
  return true;
}

// Scans a bench output file for the generation-series summary and returns
// its measured dedup ratio (logical bytes / unique bytes across the whole
// generation series), or 0 when absent.
double MeasuredDedupRatio(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 0;
  }
  std::string line;
  double ratio = 0;
  while (std::getline(in, line)) {
    if (line.find("BENCH_JSON") == std::string::npos ||
        line.find("\"bench\":\"generation_series_summary\"") == std::string::npos) {
      continue;
    }
    double v = 0;
    if (ExtractNumber(line, "dedup_ratio", &v) && v > 0) {
      ratio = v;  // last summary wins (reruns append)
    }
  }
  return ratio;
}

}  // namespace

int main(int argc, char** argv) {
  CostScenario s;
  std::string bench_json;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bench-json=", 13) == 0) {
      bench_json = argv[i] + 13;
      continue;
    }
    ++positional;
    if (positional == 1) s.weekly_backup_tb = std::atof(argv[i]);
    if (positional == 2) s.dedup_ratio = std::atof(argv[i]);
    if (positional == 3) s.retention_weeks = std::atoi(argv[i]);
  }
  bool measured = false;
  if (!bench_json.empty()) {
    double ratio = MeasuredDedupRatio(bench_json);
    if (ratio > 0) {
      s.dedup_ratio = ratio;
      measured = true;
    } else {
      std::fprintf(stderr, "no generation_series_summary with dedup_ratio in %s; "
                           "using %.0fx\n",
                   bench_json.c_str(), s.dedup_ratio);
    }
  }

  std::printf("CDStore cost explorer (Sept 2014 AWS pricing)\n");
  std::printf("==============================================\n");
  std::printf("weekly backup: %.2f TB   dedup ratio: %.1fx%s   retention: %d weeks   "
              "(n,k)=(%d,%d)\n\n",
              s.weekly_backup_tb, s.dedup_ratio,
              measured ? " (measured by bench_generations)" : " (assumed)",
              s.retention_weeks, s.n, s.k);
  std::printf("logical data under retention: %.1f TB\n\n",
              s.weekly_backup_tb * s.retention_weeks);

  CostBreakdown single = SingleCloudMonthlyCost(s);
  CostBreakdown aont = AontRsMonthlyCost(s);
  CostBreakdown cd = CdstoreMonthlyCost(s);

  std::printf("%-22s %-14s %-12s %-12s %-12s\n", "System", "Stored TB", "S3 $/mo", "EC2 $/mo",
              "Total $/mo");
  std::printf("%-22s %-14.1f %-12.0f %-12.0f %-12.0f\n", "Single cloud (no red.)",
              single.stored_tb, single.storage_usd, 0.0, single.total_usd);
  std::printf("%-22s %-14.1f %-12.0f %-12.0f %-12.0f\n", "AONT-RS multi-cloud",
              aont.stored_tb, aont.storage_usd, 0.0, aont.total_usd);
  std::printf("%-22s %-14.1f %-12.0f %-12.0f %-12.0f\n", "CDStore", cd.stored_tb,
              cd.storage_usd, cd.vm_usd, cd.total_usd);

  std::printf("\nCDStore VM choice: %d x %s per cloud (index %.1f GB per cloud)\n",
              cd.instances_per_cloud, cd.instance.c_str(), cd.index_gb_per_cloud);
  std::printf("\nSavings: %.1f%% vs AONT-RS, %.1f%% vs single cloud\n",
              100 * SavingVsAontRs(s), 100 * SavingVsSingleCloud(s));
  std::printf("(paper's case study at 16TB/10x/26wk: ~70%% vs AONT-RS)\n");
  return 0;
}
