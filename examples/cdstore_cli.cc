// cdstore_cli: a minimal operational CLI for a CDStore deployment — four
// clouds (local directories by default; any of them replaceable with an
// S3-style HTTP object store via --cloud=http://host:port/bucket, with
// --retry-attempts / --retry-backoff-ms / --retry-deadline-ms tuning the
// retry layer), real files in and out. State persists
// across invocations, so this behaves like a tiny *versioned* backup tool:
// re-backing-up a path appends a new generation (a weekly snapshot in the
// paper's workloads), old generations stay restorable, and retention-driven
// pruning plus GC reclaims their space. Backups of several files share one
// BackupSession (the encode workers and per-cloud uploaders persist across
// files) and restores stream straight to disk through a FileByteSink.
//
//   cdstore_cli <state_dir> backup   <file>... [--user=N]
//   cdstore_cli <state_dir> restore  <file> <output_path> [--gen=G] [--user=N]
//   cdstore_cli <state_dir> versions <file> [--user=N]
//   cdstore_cli <state_dir> prune    <file> --keep=N [--within-weeks=W] [--user=N]
//   cdstore_cli <state_dir> rm       <file> [--user=N]      (drops every generation)
//   cdstore_cli <state_dir> ls       [--user=N]             (whole namespace)
//   cdstore_cli <state_dir> prune-all --keep=N [--within-weeks=W] [--user=N]
//   cdstore_cli <state_dir> restore-all <out_dir> [--as-of=UNIX_MS] [--user=N]
//   cdstore_cli <state_dir> stats [--json]
//   cdstore_cli <state_dir> gc
//   cdstore_cli <state_dir> metrics [--json]
//
// Observability (src/obs/): every invocation wires one MetricRegistry
// through the servers, the client pipeline, and any HTTP retry layers.
// `metrics` scrapes it over the wire via the GetMetrics RPC; any command
// takes `--metrics` to dump the series it populated on exit, and
// `--serve-metrics-ms=MS [--serve-metrics-port=P]` to serve Prometheus
// text at GET /metrics for MS milliseconds before exiting.
//
// The namespace commands are the whole-backup-set operations: `ls`
// reconstructs every pathname from k clouds' dispersed name shares,
// `prune-all` runs one server-side retention sweep per cloud (commit-locked
// per page, not per path), and `restore-all` reproduces the namespace as of
// a point in time under <out_dir> (paths born after --as-of are skipped).
//
// Example:
//   ./examples/cdstore_cli /tmp/cd backup  /etc/hosts /etc/passwd
//   ./examples/cdstore_cli /tmp/cd backup  /etc/hosts       # generation 2
//   ./examples/cdstore_cli /tmp/cd ls
//   ./examples/cdstore_cli /tmp/cd versions /etc/hosts
//   ./examples/cdstore_cli /tmp/cd restore /etc/hosts /tmp/hosts.v1 --gen=1
//   ./examples/cdstore_cli /tmp/cd prune-all --keep=1
//   ./examples/cdstore_cli /tmp/cd restore-all /tmp/everything
//   ./examples/cdstore_cli /tmp/cd gc
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_http.h"
#include "src/obs/trace.h"
#include "src/storage/backend.h"
#include "src/storage/http_backend.h"
#include "src/util/byte_sink.h"
#include "src/util/fs_util.h"
#include "src/util/retry.h"
#include "src/util/stats.h"

using namespace cdstore;

namespace {

constexpr int kN = 4;
constexpr uint64_t kWeekMs = 7ull * 24 * 3600 * 1000;

struct Deployment {
  // Declared first so every metrics consumer below is destroyed before it.
  // One registry spans the whole deployment: servers, client, and HTTP
  // retry layers all feed it, `metrics` scrapes it over the wire.
  MetricRegistry registry;
  // One tracer spans the deployment the same way (created only with
  // --trace): client pipeline, servers, and HTTP backends all record into
  // it, so a dump shows one connected trace per request.
  std::unique_ptr<Tracer> tracer;
  ClientOptions client_options;  // metrics pre-wired to `registry`
  std::vector<std::unique_ptr<StorageBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<InProcTransport>> transports;
  std::vector<Transport*> ptrs;
};

// Per-cloud object stores come from repeatable --cloud= flags: either a
// directory path or an http://host:port/bucket endpoint (an S3-style
// store, e.g. a real cloud gateway). Unnamed clouds default to
// <state_dir>/cloudN directories, so directory and HTTP clouds mix freely
// in one deployment. Indices always stay on the local disk (§5.6).
bool OpenDeployment(const std::string& state_dir, const std::vector<std::string>& clouds,
                    const RetryPolicy& retry, bool trace, Deployment* d) {
  d->client_options.metrics = &d->registry;
  if (trace) {
    TraceOptions topts;
    topts.metrics = &d->registry;
    d->tracer = std::make_unique<Tracer>(topts);
    d->client_options.tracer = d->tracer.get();
  }
  for (int i = 0; i < kN; ++i) {
    std::string cloud_dir = state_dir + "/cloud" + std::to_string(i);
    std::string location =
        static_cast<size_t>(i) < clouds.size() ? clouds[i] : cloud_dir;
    if (location.rfind("http://", 0) == 0) {
      HttpBackendOptions bo;
      bo.retry = retry;
      bo.retry.metrics = MakeRetryMetrics(&d->registry, "cloud" + std::to_string(i));
      bo.tracer = d->tracer.get();
      auto backend = HttpObjectBackend::Open(location, bo);
      if (!backend.ok()) {
        std::fprintf(stderr, "cannot open %s: %s\n", location.c_str(),
                     backend.status().ToString().c_str());
        return false;
      }
      d->backends.push_back(std::move(backend.value()));
    } else {
      auto backend = LocalDirBackend::Open(location + "/objects");
      if (!backend.ok()) {
        std::fprintf(stderr, "cannot open %s: %s\n", location.c_str(),
                     backend.status().ToString().c_str());
        return false;
      }
      d->backends.push_back(std::move(backend.value()));
    }
    ServerOptions so;
    so.index_dir = cloud_dir + "/index";
    // Operational deployment: maintenance (prune/gc) leaves fresh index
    // snapshots at the backend automatically, pruned keep-last-N.
    so.auto_index_snapshot = true;
    so.metrics = &d->registry;
    so.tracer = d->tracer.get();
    auto server = CdstoreServer::Create(d->backends.back().get(), so);
    if (!server.ok()) {
      std::fprintf(stderr, "cannot start server %d: %s\n", i,
                   server.status().ToString().c_str());
      return false;
    }
    d->servers.push_back(std::move(server.value()));
    d->transports.push_back(std::make_unique<InProcTransport>(d->servers.back().get()));
    d->ptrs.push_back(d->transports.back().get());
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: cdstore_cli <state_dir> backup <file>... [--user=N]\n"
               "       cdstore_cli <state_dir> restore <file> <out_path> [--gen=G] [--user=N]\n"
               "       cdstore_cli <state_dir> versions <file> [--user=N]\n"
               "       cdstore_cli <state_dir> prune <file> --keep=N [--within-weeks=W] "
               "[--user=N]\n"
               "       cdstore_cli <state_dir> rm <file> [--user=N]\n"
               "       cdstore_cli <state_dir> ls [--user=N]\n"
               "       cdstore_cli <state_dir> prune-all --keep=N [--within-weeks=W] "
               "[--user=N]\n"
               "       cdstore_cli <state_dir> restore-all <out_dir> [--as-of=UNIX_MS] "
               "[--user=N]\n"
               "       cdstore_cli <state_dir> stats [--json]\n"
               "       cdstore_cli <state_dir> gc\n"
               "       cdstore_cli <state_dir> metrics [--json]\n"
               "       cdstore_cli <state_dir> trace [--chrome-json=FILE]\n"
               "\n"
               "observability (any command):\n"
               "       --metrics              print the metric series on exit\n"
               "       --serve-metrics-ms=MS  serve GET /metrics for MS ms on exit\n"
               "       --serve-metrics-port=P endpoint port (default: ephemeral)\n"
               "       --trace                trace requests; print the span tree on exit\n"
               "       --chrome-json=FILE     with --trace: also write a Chrome trace\n"
               "                              (chrome://tracing / Perfetto); '-' = stdout\n"
               "\n"
               "cloud placement (any command, repeatable, cloud 0 first):\n"
               "       --cloud=<dir> | --cloud=http://host:port/bucket\n"
               "       unnamed clouds default to <state_dir>/cloudN directories\n"
               "HTTP retry knobs:\n"
               "       --retry-attempts=N (4)  --retry-backoff-ms=MS (50)\n"
               "       --retry-deadline-ms=MS (0 = no overall deadline)\n");
  return 2;
}

// Strips every trailing "--name=value" flag off argv and returns the value
// of the requested one (or `fallback`). Flags may appear in any order after
// the positional arguments.
uint64_t TakeFlag(int* argc, char** argv, const char* name, uint64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  uint64_t value = fallback;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

// Strips every "--name=value" occurrence and returns all the values in
// order — for repeatable flags like --cloud= (first value is cloud 0).
std::vector<std::string> TakeFlagAll(int* argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  std::vector<std::string> values;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      values.emplace_back(argv[i] + prefix.size());
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return values;
}

// Strips every bare "--name" occurrence; true when it appeared at all.
bool TakeBoolFlag(int* argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  bool found = false;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    if (flag == argv[i]) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return found;
}

uint64_t NowMs() { return static_cast<uint64_t>(std::time(nullptr)) * 1000ull; }

// ---- metrics rendering ----------------------------------------------------

std::string LabelsText(const MetricLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += '}';
  return out;
}

// Human table: one row per series, sorted (Snapshot order is already
// name+labels). Histograms show count/mean/p50/p99 from the merged buckets.
void PrintMetricsTable(const std::vector<MetricSample>& samples) {
  std::printf("%-72s %s\n", "metric", "value");
  for (const MetricSample& s : samples) {
    std::string name = s.name + LabelsText(s.labels);
    if (s.kind == MetricSample::kHistogram) {
      HistogramSnapshot snap{s.bounds, s.bucket_counts, s.count, s.sum};
      std::printf("%-72s count=%llu mean=%.0f p50=%.0f p99=%.0f\n", name.c_str(),
                  static_cast<unsigned long long>(s.count), snap.Mean(),
                  snap.Quantile(0.5), snap.Quantile(0.99));
    } else {
      std::printf("%-72s %lld\n", name.c_str(), static_cast<long long>(s.value));
    }
  }
  std::printf("%zu series\n", samples.size());
}

void AppendJsonEscaped(const std::string& v, std::string* out) {
  for (char c : v) {
    if (c == '"' || c == '\\') {
      *out += '\\';
    }
    *out += c;
  }
}

// One JSON array, one object per series. Histogram quantiles are
// pre-interpolated so consumers need no bucket math.
void PrintMetricsJson(const std::vector<MetricSample>& samples) {
  std::string out = "[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i > 0) {
      out += ',';
    }
    out += "\n {\"name\":\"";
    AppendJsonEscaped(s.name, &out);
    out += "\",\"labels\":{";
    for (size_t l = 0; l < s.labels.size(); ++l) {
      if (l > 0) {
        out += ',';
      }
      out += '"';
      AppendJsonEscaped(s.labels[l].first, &out);
      out += "\":\"";
      AppendJsonEscaped(s.labels[l].second, &out);
      out += '"';
    }
    out += "},";
    if (s.kind == MetricSample::kHistogram) {
      HistogramSnapshot snap{s.bounds, s.bucket_counts, s.count, s.sum};
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "\"kind\":\"histogram\",\"count\":%llu,\"sum\":%llu,"
                    "\"mean\":%.1f,\"p50\":%.1f,\"p99\":%.1f}",
                    static_cast<unsigned long long>(s.count),
                    static_cast<unsigned long long>(s.sum), snap.Mean(),
                    snap.Quantile(0.5), snap.Quantile(0.99));
      out += buf;
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "\"kind\":\"%s\",\"value\":%lld}",
                    s.kind == MetricSample::kGauge ? "gauge" : "counter",
                    static_cast<long long>(s.value));
      out += buf;
    }
  }
  out += "\n]\n";
  std::fputs(out.c_str(), stdout);
}

}  // namespace

namespace {

// The command dispatch: everything after flag parsing and deployment
// bring-up. Runs against main's Deployment so `d` (and its metrics
// registry) outlives the command and can be reported or served afterwards.
// Renders a trace dump: the human span tree, the slow-request flight
// recorder, and the shed accounting — or, with a --chrome-json target, a
// Chrome trace-event file instead ("-" = stdout).
int ReportTraces(const std::vector<TraceSpanSample>& spans,
                 const std::vector<SlowTraceSample>& slow, uint64_t recorded,
                 uint64_t dropped, uint64_t unsampled, uint64_t evictions,
                 const std::string& chrome_json) {
  if (!chrome_json.empty()) {
    std::string out = ChromeTraceJson(spans);
    if (chrome_json == "-") {
      std::fputs(out.c_str(), stdout);
      return 0;
    }
    if (Status st = WriteFile(chrome_json, BytesOf(out)); !st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", chrome_json.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu span(s) to %s (load in chrome://tracing or Perfetto)\n",
                spans.size(), chrome_json.c_str());
    return 0;
  }
  std::fputs(FormatTraceTree(spans).c_str(), stdout);
  if (!slow.empty()) {
    std::printf("slow requests (flight recorder, worst first):\n");
    for (const SlowTraceSample& s : slow) {
      std::printf("  %-10s %8.1f ms  trace=0x%llx%s\n", s.root.c_str(),
                  static_cast<double>(s.dur_ns) / 1e6,
                  static_cast<unsigned long long>(s.trace_id),
                  s.sampled != 0 ? "" : " (unsampled; only the root span exists)");
    }
  }
  std::printf("%zu span(s); recorded=%llu dropped=%llu unsampled=%llu "
              "flight_evictions=%llu\n",
              spans.size(), static_cast<unsigned long long>(recorded),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(unsampled),
              static_cast<unsigned long long>(evictions));
  return 0;
}

// The command dispatch: everything after flag parsing and deployment
// bring-up (see the block comment above RunCommand's caller).
int RunCommand(const std::string& cmd, int argc, char** argv, Deployment& d, UserId user,
               uint64_t gen, uint64_t keep, uint64_t within_weeks, uint64_t as_of,
               bool json, const std::string& chrome_json) {
  if (cmd == "backup" && argc >= 4) {
    // All files share one session: encode workers and per-cloud uploader
    // threads are set up once, files stream through one after another. A
    // re-backup of an existing path appends a new generation.
    CdstoreClient client(d.ptrs, user, d.client_options);
    auto session = client.OpenBackupSession();
    if (!session.ok()) {
      std::fprintf(stderr, "session failed: %s\n", session.status().ToString().c_str());
      return 1;
    }
    UploadFileOptions fopts;
    fopts.mode = PutFileMode::kNewGeneration;
    fopts.timestamp_ms = NowMs();
    for (int a = 3; a < argc; ++a) {
      auto data = ReadFileBytes(argv[a]);
      if (!data.ok()) {
        std::fprintf(stderr, "read failed: %s\n", data.status().ToString().c_str());
        return 1;
      }
      UploadStats stats;
      Status st = session.value()->Upload(argv[a], data.value(), &stats, fopts);
      if (!st.ok()) {
        std::fprintf(stderr, "backup failed: %s\n", st.ToString().c_str());
        return 1;
      }
      double saving = stats.logical_share_bytes == 0
                          ? 0.0
                          : 100.0 * (1.0 - static_cast<double>(stats.transferred_share_bytes) /
                                               static_cast<double>(stats.logical_share_bytes));
      std::printf("backed up %s as generation %llu: %s in %zu secrets across %d clouds; "
                  "transferred %s (dedup saved %.1f%%)\n",
                  argv[a], static_cast<unsigned long long>(stats.generation_id),
                  FormatSize(stats.logical_bytes).c_str(),
                  static_cast<size_t>(stats.num_secrets), kN,
                  FormatSize(stats.transferred_share_bytes).c_str(), saving);
    }
    Status close = session.value()->Close();
    if (!close.ok()) {
      std::fprintf(stderr, "session close failed: %s\n", close.ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (cmd == "restore" && argc >= 5) {
    CdstoreClient client(d.ptrs, user, d.client_options);
    // Stream the restore straight to disk: decoded secrets hit the file as
    // fetch lanes and decode workers pipeline, never a whole file in RAM.
    // Restores go to a temp path renamed into place on success, so a
    // failed restore never clobbers an existing good copy at out_path.
    std::string out_path = argv[4];
    std::string tmp_path = out_path + ".partial";
    auto sink = FileByteSink::Open(tmp_path);
    if (!sink.ok()) {
      std::fprintf(stderr, "open failed: %s\n", sink.status().ToString().c_str());
      return 1;
    }
    DownloadStats stats;
    Status st = client.Download(argv[3], *sink.value(), &stats, gen);
    if (st.ok()) {
      st = sink.value()->Close();
    }
    if (!st.ok()) {
      std::remove(tmp_path.c_str());
      std::fprintf(stderr, "restore failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
      std::fprintf(stderr, "rename %s -> %s failed\n", tmp_path.c_str(), out_path.c_str());
      return 1;
    }
    std::printf("restored %s%s -> %s (%s from clouds", argv[3],
                gen == 0 ? " (latest)" : (" gen " + std::to_string(gen)).c_str(),
                out_path.c_str(), FormatSize(sink.value()->bytes_written()).c_str());
    for (int c : stats.clouds_used) {
      std::printf(" %d", c);
    }
    std::printf(")\n");
    return 0;
  }

  if (cmd == "versions" && argc >= 4) {
    CdstoreClient client(d.ptrs, user, d.client_options);
    auto versions = client.ListVersions(argv[3]);
    if (!versions.ok()) {
      std::fprintf(stderr, "versions failed: %s\n", versions.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6s %-12s %-12s %-10s %s\n", "gen", "logical", "unique", "secrets",
                "timestamp_ms");
    for (const VersionInfo& v : versions.value()) {
      std::printf("%-6llu %-12s %-12s %-10llu %llu\n",
                  static_cast<unsigned long long>(v.generation_id),
                  FormatSize(v.logical_bytes).c_str(), FormatSize(v.unique_bytes).c_str(),
                  static_cast<unsigned long long>(v.num_secrets),
                  static_cast<unsigned long long>(v.timestamp_ms));
    }
    return 0;
  }

  if (cmd == "prune" && argc >= 4) {
    if (keep == 0 && within_weeks == 0) {
      std::fprintf(stderr, "prune needs --keep=N and/or --within-weeks=W\n");
      return 2;
    }
    CdstoreClient client(d.ptrs, user, d.client_options);
    RetentionPolicy policy;
    // Clamp rather than truncate: a --keep above 2^32 must not wrap to a
    // "no count rule" zero.
    policy.keep_last_n =
        keep > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(keep);
    // Saturate rather than wrap for absurdly large windows.
    policy.keep_within_ms = within_weeks > UINT64_MAX / kWeekMs ? UINT64_MAX
                                                                : within_weeks * kWeekMs;
    policy.now_ms = NowMs();
    auto reply = client.ApplyRetention(argv[3], policy);
    if (!reply.ok()) {
      std::fprintf(stderr, "prune failed: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::printf("pruned %u generation(s) of %s (%s logical, %u shares orphaned):",
                reply.value().generations_deleted, argv[3],
                FormatSize(reply.value().logical_bytes_deleted).c_str(),
                reply.value().shares_orphaned);
    for (uint64_t id : reply.value().deleted_generations) {
      std::printf(" %llu", static_cast<unsigned long long>(id));
    }
    std::printf("\nrun 'gc' to reclaim container space\n");
    return 0;
  }

  if (cmd == "ls") {
    // Namespace enumeration: pathnames reconstructed from k clouds'
    // dispersed shares (no single cloud ever held them), paged RPCs
    // underneath so no reply frame carries the whole namespace.
    CdstoreClient client(d.ptrs, user, d.client_options);
    auto listing = client.ListPaths();
    if (!listing.ok()) {
      std::fprintf(stderr, "ls failed: %s\n", listing.status().ToString().c_str());
      return 1;
    }
    std::printf("%-40s %-6s %-8s %-12s %s\n", "path", "gens", "latest", "size",
                "last_backup_ms");
    for (const NamespaceEntry& e : listing.value().entries) {
      std::printf("%-40s %-6llu %-8llu %-12s %llu\n", e.path_name.c_str(),
                  static_cast<unsigned long long>(e.generation_count),
                  static_cast<unsigned long long>(e.latest_generation),
                  FormatSize(e.latest_logical_bytes).c_str(),
                  static_cast<unsigned long long>(e.latest_timestamp_ms));
    }
    if (listing.value().unnamed_paths > 0) {
      std::printf("(%llu path(s) predate name storage; their next backup makes them "
                  "enumerable)\n",
                  static_cast<unsigned long long>(listing.value().unnamed_paths));
    }
    std::printf("%zu path(s)\n", listing.value().entries.size());
    return 0;
  }

  if (cmd == "prune-all") {
    if (keep == 0 && within_weeks == 0) {
      std::fprintf(stderr, "prune-all needs --keep=N and/or --within-weeks=W\n");
      return 2;
    }
    CdstoreClient client(d.ptrs, user, d.client_options);
    RetentionPolicy policy;
    policy.keep_last_n = keep > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(keep);
    policy.keep_within_ms = within_weeks > UINT64_MAX / kWeekMs ? UINT64_MAX
                                                                : within_weeks * kWeekMs;
    policy.now_ms = NowMs();
    // Resolve names first so the per-path report is human-readable (the
    // sweep reply itself carries only path ids).
    std::map<Bytes, std::string> names;
    if (auto listing = client.ListPaths(); listing.ok()) {
      for (const NamespaceEntry& e : listing.value().entries) {
        names[e.path_id] = e.path_name;
      }
    }
    auto reply = client.ApplyRetentionNamespace(policy);
    if (!reply.ok()) {
      std::fprintf(stderr, "prune-all failed: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    const ApplyRetentionNamespaceReply& r = reply.value();
    std::printf("swept %llu path(s) in %u page(s): pruned %llu generation(s), %s logical, "
                "%u shares orphaned, %llu path(s) emptied\n",
                static_cast<unsigned long long>(r.paths_swept), r.pages,
                static_cast<unsigned long long>(r.generations_deleted),
                FormatSize(r.logical_bytes_deleted).c_str(), r.shares_orphaned,
                static_cast<unsigned long long>(r.paths_removed));
    for (const PathRetentionResult& p : r.per_path) {
      auto it = names.find(p.path_id);
      std::printf("  %-40s -%u generation(s), %s%s\n",
                  it != names.end() ? it->second.c_str() : "<unnamed path>",
                  p.generations_deleted, FormatSize(p.logical_bytes_deleted).c_str(),
                  p.path_removed ? " (path removed)" : "");
    }
    std::printf("run 'gc' to reclaim container space\n");
    return 0;
  }

  if (cmd == "restore-all" && argc >= 4) {
    // Point-in-time restore of the whole namespace under <out_dir>:
    // equivalent to running `restore` once per path with the right --gen,
    // but the generation resolution (newest at or before --as-of) happens
    // per path, and paths born after the point are skipped.
    std::string out_dir = argv[3];
    CdstoreClient client(d.ptrs, user, d.client_options);
    RestoreSelector selector;
    selector.as_of_ms = as_of;
    Status close_error;
    // Wraps FileByteSink so the flush error of each restored file
    // surfaces even though RestoreNamespace owns the sink's lifetime.
    class ClosingFileSink : public ByteSink {
     public:
      ClosingFileSink(std::unique_ptr<FileByteSink> f, Status* err)
          : f_(std::move(f)), err_(err) {}
      ~ClosingFileSink() override {
        if (Status st = f_->Close(); !st.ok() && err_->ok()) {
          *err_ = st;
        }
      }
      Status Append(ConstByteSpan data) override { return f_->Append(data); }

     private:
      std::unique_ptr<FileByteSink> f_;
      Status* err_;
    };
    auto factory = [&](const NamespaceEntry& e,
                       uint64_t g) -> Result<std::unique_ptr<ByteSink>> {
      (void)g;
      // Rebuild the destination from sanitized components: backup names
      // are untrusted here, and a stored "../x" (or "/a/../../x") must not
      // write outside out_dir. ".." components skip the file loudly
      // instead of being silently rewritten.
      std::string rel;
      for (size_t i = 0; i < e.path_name.size();) {
        size_t j = e.path_name.find('/', i);
        if (j == std::string::npos) {
          j = e.path_name.size();
        }
        std::string comp = e.path_name.substr(i, j - i);
        i = j + 1;
        if (comp.empty() || comp == ".") {
          continue;
        }
        if (comp == "..") {
          std::fprintf(stderr, "skipping %s: path would escape %s\n", e.path_name.c_str(),
                       out_dir.c_str());
          return std::unique_ptr<ByteSink>();  // counted as skipped
        }
        rel += rel.empty() ? comp : "/" + comp;
      }
      if (rel.empty()) {
        std::fprintf(stderr, "skipping backup path %s: no usable file name\n",
                     e.path_name.c_str());
        return std::unique_ptr<ByteSink>();
      }
      std::string dest = out_dir + "/" + rel;
      if (auto slash = dest.find_last_of('/'); slash != std::string::npos) {
        if (Status st = CreateDirs(dest.substr(0, slash)); !st.ok()) {
          return st;
        }
      }
      auto sink = FileByteSink::Open(dest);
      if (!sink.ok()) {
        return sink.status();
      }
      return std::unique_ptr<ByteSink>(
          new ClosingFileSink(std::move(sink.value()), &close_error));
    };
    auto stats = client.RestoreNamespace(selector, factory);
    if (!stats.ok()) {
      std::fprintf(stderr, "restore-all failed: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    if (!close_error.ok()) {
      std::fprintf(stderr, "restore-all failed: %s\n", close_error.ToString().c_str());
      return 1;
    }
    for (const RestoredPath& p : stats.value().restored) {
      std::printf("restored %s (generation %llu, %s)\n", p.path_name.c_str(),
                  static_cast<unsigned long long>(p.generation),
                  FormatSize(p.bytes).c_str());
    }
    std::printf("restored %llu file(s), %s%s; skipped %llu\n",
                static_cast<unsigned long long>(stats.value().files_restored),
                FormatSize(stats.value().bytes_restored).c_str(),
                as_of == 0 ? " (latest)" : "",
                static_cast<unsigned long long>(stats.value().files_skipped));
    if (stats.value().files_unnamed > 0) {
      // An incomplete restore must not look complete: legacy paths whose
      // names were never stored cannot be enumerated, so they are missing
      // from out_dir until a backup touches them.
      std::fprintf(stderr,
                   "WARNING: %llu path(s) predate name storage and were NOT restored; "
                   "back them up once to make them enumerable\n",
                   static_cast<unsigned long long>(stats.value().files_unnamed));
      return 1;
    }
    return 0;
  }

  if ((cmd == "rm" || cmd == "delete") && argc >= 4) {
    // The DeleteFile RPC end to end: every generation's references are
    // dropped on every cloud; a never-backed-up path is a clean NotFound.
    CdstoreClient client(d.ptrs, user, d.client_options);
    Status st = client.DeleteFile(argv[3]);
    if (!st.ok()) {
      std::fprintf(stderr, "rm %s failed: %s\n", argv[3], st.ToString().c_str());
      return 1;
    }
    std::printf("rm %s: ok (run 'gc' to reclaim space)\n", argv[3]);
    return 0;
  }

  if (cmd == "stats") {
    if (json) {
      std::printf("[");
    }
    bool first = true;
    for (int i = 0; i < kN; ++i) {
      Bytes frame = d.servers[i]->Handle(Encode(StatsRequest{}));
      StatsReply stats;
      if (!Decode(frame, &stats).ok()) {
        continue;
      }
      if (json) {
        std::printf("%s\n {\"cloud\":%d,\"files\":%llu,\"generations\":%llu,"
                    "\"unique_shares\":%llu,\"stored_bytes\":%llu,\"containers\":%llu}",
                    first ? "" : ",", i, static_cast<unsigned long long>(stats.file_count),
                    static_cast<unsigned long long>(stats.generation_count),
                    static_cast<unsigned long long>(stats.unique_shares),
                    static_cast<unsigned long long>(stats.stored_bytes),
                    static_cast<unsigned long long>(stats.container_count));
        first = false;
        continue;
      }
      std::printf("cloud %d: %llu files (%llu generations), %llu unique shares, %s stored, "
                  "%llu containers\n",
                  i, static_cast<unsigned long long>(stats.file_count),
                  static_cast<unsigned long long>(stats.generation_count),
                  static_cast<unsigned long long>(stats.unique_shares),
                  FormatSize(stats.stored_bytes).c_str(),
                  static_cast<unsigned long long>(stats.container_count));
    }
    if (json) {
      std::printf("\n]\n");
    }
    return 0;
  }

  if (cmd == "metrics") {
    // Scrape over the wire, not in-process: probe each cloud with a Stats
    // RPC first (a liveness check that also exercises the per-RPC dispatch
    // histograms), then pull the snapshot through the GetMetrics RPC — the
    // exact frames a remote operator tool would send. The CLI's four clouds
    // share one deployment registry, so one scrape covers them all.
    for (int i = 0; i < kN; ++i) {
      auto frame = d.ptrs[i]->Call(Encode(StatsRequest{}));
      Status st = frame.ok() ? DecodeIfError(frame.value()) : frame.status();
      if (!st.ok()) {
        std::fprintf(stderr, "stats probe on cloud %d failed: %s\n", i,
                     st.ToString().c_str());
        return 1;
      }
    }
    auto frame = d.ptrs[0]->Call(Encode(GetMetricsRequest{}));
    Status st = frame.ok() ? DecodeIfError(frame.value()) : frame.status();
    GetMetricsReply reply;
    if (st.ok()) {
      st = Decode(frame.value(), &reply);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "metrics scrape failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (json) {
      PrintMetricsJson(reply.samples);
    } else {
      PrintMetricsTable(reply.samples);
    }
    return 0;
  }

  if (cmd == "trace") {
    // Scrape over the wire via the GetTraces RPC — the frame a remote
    // operator tool would send. All four clouds share the deployment
    // tracer, so cloud 0's dump covers every server-side span; a fresh CLI
    // process has an empty dump unless this invocation also ran traced
    // work, so the common path is `backup --trace [--chrome-json=FILE]`,
    // which dumps in-process on exit instead.
    auto frame = d.ptrs[0]->Call(Encode(GetTracesRequest{}));
    Status st = frame.ok() ? DecodeIfError(frame.value()) : frame.status();
    GetTracesReply reply;
    if (st.ok()) {
      st = Decode(frame.value(), &reply);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "trace scrape failed: %s\n", st.ToString().c_str());
      return 1;
    }
    return ReportTraces(reply.spans, reply.slow, reply.spans_recorded,
                        reply.spans_dropped, reply.unsampled,
                        reply.flight_evictions, chrome_json);
  }

  if (cmd == "gc") {
    // Drives the Gc RPC over the transports (the same frames a remote
    // operator tool would send), not the in-process CollectGarbage call.
    for (int i = 0; i < kN; ++i) {
      auto frame = d.ptrs[i]->Call(Encode(GcRequest{}));
      Status st = frame.ok() ? DecodeIfError(frame.value()) : frame.status();
      GcReply reply;
      if (st.ok()) {
        st = Decode(frame.value(), &reply);
      }
      if (!st.ok()) {
        std::fprintf(stderr, "gc on cloud %d failed: %s\n", i, st.ToString().c_str());
        return 1;
      }
      std::printf("cloud %d: scanned %llu containers, rewrote %llu, reclaimed %s\n", i,
                  static_cast<unsigned long long>(reply.containers_scanned),
                  static_cast<unsigned long long>(reply.containers_rewritten),
                  FormatSize(reply.bytes_reclaimed).c_str());
    }
    return 0;
  }

  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  UserId user = TakeFlag(&argc, argv, "user", 1);
  uint64_t gen = TakeFlag(&argc, argv, "gen", 0);
  uint64_t keep = TakeFlag(&argc, argv, "keep", 0);
  uint64_t within_weeks = TakeFlag(&argc, argv, "within-weeks", 0);
  uint64_t as_of = TakeFlag(&argc, argv, "as-of", 0);
  bool json = TakeBoolFlag(&argc, argv, "json");
  bool show_metrics = TakeBoolFlag(&argc, argv, "metrics");
  bool trace = TakeBoolFlag(&argc, argv, "trace");
  std::vector<std::string> chrome_flags = TakeFlagAll(&argc, argv, "chrome-json");
  std::string chrome_json = chrome_flags.empty() ? "" : chrome_flags.back();
  trace = trace || !chrome_json.empty();
  uint64_t serve_ms = TakeFlag(&argc, argv, "serve-metrics-ms", 0);
  uint64_t serve_port = TakeFlag(&argc, argv, "serve-metrics-port", 0);
  std::vector<std::string> clouds = TakeFlagAll(&argc, argv, "cloud");
  RetryPolicy retry;  // HTTP clouds only; directory clouds never retry
  retry.max_attempts =
      static_cast<int>(TakeFlag(&argc, argv, "retry-attempts", 4));
  retry.initial_backoff_ms = TakeFlag(&argc, argv, "retry-backoff-ms", 50);
  retry.max_backoff_ms = retry.initial_backoff_ms * 20;
  retry.overall_deadline_ms = TakeFlag(&argc, argv, "retry-deadline-ms", 0);
  if (argc < 3) {
    return Usage();
  }
  if (clouds.size() > static_cast<size_t>(kN)) {
    std::fprintf(stderr, "at most %d --cloud= flags (got %zu)\n", kN, clouds.size());
    return 2;
  }
  std::string state_dir = argv[1];
  std::string cmd = argv[2];
  Deployment d;
  if (!OpenDeployment(state_dir, clouds, retry, trace || cmd == "trace", &d)) {
    return 1;
  }
  int rc = RunCommand(cmd, argc, argv, d, user, gen, keep, within_weeks, as_of, json,
                      chrome_json);

  // Post-command observability. --metrics dumps every series the command
  // populated (client pipeline, server dispatch, HTTP retry layers);
  // --serve-metrics-ms keeps a GET /metrics endpoint up afterwards so an
  // external scraper (curl, a Prometheus test target) pulls the same
  // snapshot over HTTP before the process exits.
  if (rc == 0 && show_metrics && cmd != "metrics") {
    PrintMetricsTable(d.registry.Snapshot());
  }
  // --trace dumps the spans this invocation recorded (client pipeline,
  // retry attempts, and — via the propagated wire context — the server-side
  // waits/commits they parented). The `trace` command already reported its
  // wire scrape above.
  if (rc == 0 && trace && cmd != "trace" && d.tracer != nullptr) {
    TraceDump dump = d.tracer->Dump();
    rc = ReportTraces(dump.spans, dump.slow, dump.spans_recorded, dump.spans_dropped,
                      dump.unsampled, dump.flight_evictions, chrome_json);
  }
  if (rc == 0 && serve_ms > 0) {
    auto server = MetricsHttpServer::Start(&d.registry, static_cast<int>(serve_port));
    if (!server.ok()) {
      std::fprintf(stderr, "metrics endpoint failed: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    std::printf("serving %s for %llu ms\n", server.value()->url().c_str(),
                static_cast<unsigned long long>(serve_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
    server.value()->Stop();
  }
  return rc;
}
