// cdstore_cli: a minimal operational CLI for a local CDStore deployment —
// four cloud directories on disk, real files in and out. State persists
// across invocations, so this behaves like a tiny backup tool. Backups of
// several files share one BackupSession (the encode workers and per-cloud
// uploaders persist across files) and restores stream straight to disk
// through a FileByteSink, so neither direction holds a whole file's shares
// in memory.
//
//   cdstore_cli <state_dir> backup  <file>... [--user=N]
//   cdstore_cli <state_dir> restore <file> <output_path> [--user=N]
//   cdstore_cli <state_dir> delete  <file> [--user=N]
//   cdstore_cli <state_dir> stats
//   cdstore_cli <state_dir> gc
//
// Example:
//   ./examples/cdstore_cli /tmp/cd backup  /etc/hosts /etc/passwd
//   ./examples/cdstore_cli /tmp/cd restore /etc/hosts /tmp/hosts.restored
//   diff /etc/hosts /tmp/hosts.restored
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/util/byte_sink.h"
#include "src/util/fs_util.h"
#include "src/util/stats.h"

using namespace cdstore;

namespace {

constexpr int kN = 4;

struct Deployment {
  std::vector<std::unique_ptr<LocalDirBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<InProcTransport>> transports;
  std::vector<Transport*> ptrs;
};

bool OpenDeployment(const std::string& state_dir, Deployment* d) {
  for (int i = 0; i < kN; ++i) {
    std::string cloud_dir = state_dir + "/cloud" + std::to_string(i);
    auto backend = LocalDirBackend::Open(cloud_dir + "/objects");
    if (!backend.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", cloud_dir.c_str(),
                   backend.status().ToString().c_str());
      return false;
    }
    d->backends.push_back(std::move(backend.value()));
    ServerOptions so;
    so.index_dir = cloud_dir + "/index";
    auto server = CdstoreServer::Create(d->backends.back().get(), so);
    if (!server.ok()) {
      std::fprintf(stderr, "cannot start server %d: %s\n", i,
                   server.status().ToString().c_str());
      return false;
    }
    d->servers.push_back(std::move(server.value()));
    d->transports.push_back(std::make_unique<InProcTransport>(d->servers.back().get()));
    d->ptrs.push_back(d->transports.back().get());
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: cdstore_cli <state_dir> backup <file>... [--user=N]\n"
               "       cdstore_cli <state_dir> restore <file> <out_path> [--user=N]\n"
               "       cdstore_cli <state_dir> delete <file> [--user=N]\n"
               "       cdstore_cli <state_dir> stats\n"
               "       cdstore_cli <state_dir> gc\n");
  return 2;
}

// Strips a trailing --user=N argument; defaults to user 1.
UserId ParseUser(int* argc, char** argv) {
  if (*argc > 3 && std::strncmp(argv[*argc - 1], "--user=", 7) == 0) {
    UserId user = std::strtoull(argv[*argc - 1] + 7, nullptr, 10);
    --*argc;
    return user;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  std::string state_dir = argv[1];
  std::string cmd = argv[2];
  UserId user = ParseUser(&argc, argv);
  Deployment d;
  if (!OpenDeployment(state_dir, &d)) {
    return 1;
  }

  if (cmd == "backup" && argc >= 4) {
    // All files share one session: encode workers and per-cloud uploader
    // threads are set up once, files stream through one after another.
    CdstoreClient client(d.ptrs, user, ClientOptions{});
    auto session = client.OpenBackupSession();
    if (!session.ok()) {
      std::fprintf(stderr, "session failed: %s\n", session.status().ToString().c_str());
      return 1;
    }
    for (int a = 3; a < argc; ++a) {
      auto data = ReadFileBytes(argv[a]);
      if (!data.ok()) {
        std::fprintf(stderr, "read failed: %s\n", data.status().ToString().c_str());
        return 1;
      }
      UploadStats stats;
      Status st = session.value()->Upload(argv[a], data.value(), &stats);
      if (!st.ok()) {
        std::fprintf(stderr, "backup failed: %s\n", st.ToString().c_str());
        return 1;
      }
      double saving = stats.logical_share_bytes == 0
                          ? 0.0
                          : 100.0 * (1.0 - static_cast<double>(stats.transferred_share_bytes) /
                                               static_cast<double>(stats.logical_share_bytes));
      std::printf("backed up %s: %s in %zu secrets across %d clouds; transferred %s "
                  "(dedup saved %.1f%%)\n",
                  argv[a], FormatSize(stats.logical_bytes).c_str(),
                  static_cast<size_t>(stats.num_secrets), kN,
                  FormatSize(stats.transferred_share_bytes).c_str(), saving);
    }
    Status close = session.value()->Close();
    if (!close.ok()) {
      std::fprintf(stderr, "session close failed: %s\n", close.ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (cmd == "restore" && argc >= 5) {
    CdstoreClient client(d.ptrs, user, ClientOptions{});
    // Stream the restore straight to disk: decoded secrets hit the file as
    // fetch lanes and decode workers pipeline, never a whole file in RAM.
    // Restores go to a temp path renamed into place on success, so a
    // failed restore never clobbers an existing good copy at out_path.
    std::string out_path = argv[4];
    std::string tmp_path = out_path + ".partial";
    auto sink = FileByteSink::Open(tmp_path);
    if (!sink.ok()) {
      std::fprintf(stderr, "open failed: %s\n", sink.status().ToString().c_str());
      return 1;
    }
    DownloadStats stats;
    Status st = client.Download(argv[3], *sink.value(), &stats);
    if (st.ok()) {
      st = sink.value()->Close();
    }
    if (!st.ok()) {
      std::remove(tmp_path.c_str());
      std::fprintf(stderr, "restore failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
      std::fprintf(stderr, "rename %s -> %s failed\n", tmp_path.c_str(), out_path.c_str());
      return 1;
    }
    std::printf("restored %s -> %s (%s from clouds", argv[3], out_path.c_str(),
                FormatSize(sink.value()->bytes_written()).c_str());
    for (int c : stats.clouds_used) {
      std::printf(" %d", c);
    }
    std::printf(")\n");
    return 0;
  }

  if (cmd == "delete" && argc >= 4) {
    CdstoreClient client(d.ptrs, user, ClientOptions{});
    Status st = client.DeleteFile(argv[3]);
    std::printf("delete %s: %s (run 'gc' to reclaim space)\n", argv[3],
                st.ToString().c_str());
    return st.ok() ? 0 : 1;
  }

  if (cmd == "stats") {
    for (int i = 0; i < kN; ++i) {
      Bytes frame = d.servers[i]->Handle(Encode(StatsRequest{}));
      StatsReply stats;
      if (!Decode(frame, &stats).ok()) {
        continue;
      }
      std::printf("cloud %d: %llu files, %llu unique shares, %s stored, %llu containers\n", i,
                  static_cast<unsigned long long>(stats.file_count),
                  static_cast<unsigned long long>(stats.unique_shares),
                  FormatSize(stats.stored_bytes).c_str(),
                  static_cast<unsigned long long>(stats.container_count));
    }
    return 0;
  }

  if (cmd == "gc") {
    for (int i = 0; i < kN; ++i) {
      auto stats = d.servers[i]->CollectGarbage();
      if (!stats.ok()) {
        std::fprintf(stderr, "gc on cloud %d failed: %s\n", i,
                     stats.status().ToString().c_str());
        return 1;
      }
      std::printf("cloud %d: scanned %llu containers, rewrote %llu, reclaimed %s\n", i,
                  static_cast<unsigned long long>(stats.value().containers_scanned),
                  static_cast<unsigned long long>(stats.value().containers_rewritten),
                  FormatSize(stats.value().bytes_reclaimed).c_str());
    }
    return 0;
  }

  return Usage();
}
