// A tour of every secret sharing algorithm in the library (Table 1 of the
// paper): shows the share layout, storage blowup, confidentiality behavior
// and dedup capability side by side on the same secret.
//
//   ./examples/secret_sharing_tour
#include <cstdio>

#include "src/dispersal/registry.h"
#include "src/util/rng.h"

using namespace cdstore;

int main() {
  const int n = 4, k = 3, r = 1;
  Bytes secret = BytesOf("all our backups belong to no single cloud");
  std::printf("Secret sharing tour: %zu-byte secret, (n,k)=(%d,%d)\n", secret.size(), n, k);
  std::printf("============================================================\n\n");
  std::printf("%-16s %-8s %-10s %-10s %-12s %-14s\n", "Scheme", "r", "Share B", "Blowup",
              "Dedup-able", "Self-verify");

  for (SchemeType type : AllSchemeTypes()) {
    SchemeParams p{.n = n, .k = k, .r = r, .salt = {}};
    auto made = MakeScheme(type, p);
    if (!made.ok()) {
      continue;
    }
    SecretSharing& s = *made.value();
    std::vector<Bytes> shares;
    if (!s.Encode(secret, &shares).ok()) {
      continue;
    }
    std::printf("%-16s %-8d %-10zu %-10.2f %-12s %-14s\n", s.name().c_str(), s.r(),
                shares[0].size(), s.StorageBlowup(secret.size()),
                s.deterministic() ? "yes" : "no", s.self_verifying() ? "yes" : "no");
  }

  std::printf("\n--- confidentiality demo -------------------------------------\n");
  std::printf("IDA (r=0) leaks plaintext in its shares; CAONT-RS does not:\n\n");
  {
    SchemeParams p{.n = n, .k = k, .r = 0, .salt = {}};
    auto ida = std::move(MakeScheme(SchemeType::kIda, p).value());
    std::vector<Bytes> shares;
    (void)ida->Encode(secret, &shares);
    std::printf("IDA share 0 (systematic = raw stripe!): \"%.14s...\"\n",
                reinterpret_cast<const char*>(shares[0].data()));
    auto caont = std::move(MakeScheme(SchemeType::kCaontRs, p).value());
    std::vector<Bytes> cshares;
    (void)caont->Encode(secret, &cshares);
    std::printf("CAONT-RS share 0 (AONT-masked):         %s...\n",
                HexEncode(ConstByteSpan(cshares[0].data(), 14)).c_str());
  }

  std::printf("\n--- the dedup dilemma ----------------------------------------\n");
  std::printf("Encoding the same secret twice:\n");
  {
    SchemeParams p{.n = n, .k = k, .r = r, .salt = {}};
    auto aont_rs = std::move(MakeScheme(SchemeType::kAontRs, p).value());
    std::vector<Bytes> s1, s2;
    (void)aont_rs->Encode(secret, &s1);
    (void)aont_rs->Encode(secret, &s2);
    std::printf("  AONT-RS (random key):      shares differ -> clouds cannot dedup\n");
    std::printf("    run1: %s...\n    run2: %s...\n",
                HexEncode(ConstByteSpan(s1[0].data(), 12)).c_str(),
                HexEncode(ConstByteSpan(s2[0].data(), 12)).c_str());
    auto caont = std::move(MakeScheme(SchemeType::kCaontRs, p).value());
    (void)caont->Encode(secret, &s1);
    (void)caont->Encode(secret, &s2);
    std::printf("  CAONT-RS (convergent key): shares identical -> dedup works\n");
    std::printf("    run1: %s...\n    run2: %s...\n",
                HexEncode(ConstByteSpan(s1[0].data(), 12)).c_str(),
                HexEncode(ConstByteSpan(s2[0].data(), 12)).c_str());
  }

  std::printf("\n--- ramp scheme trade-off (RSSS) -----------------------------\n");
  std::printf("%-4s %-22s %-10s\n", "r", "meaning", "blowup");
  for (int rr = 0; rr < k; ++rr) {
    SchemeParams p{.n = n, .k = k, .r = rr, .salt = {}};
    auto rsss = std::move(MakeScheme(SchemeType::kRsss, p).value());
    const char* meaning = rr == 0 ? "= IDA (no secrecy)"
                         : rr == k - 1 ? "= SSSS-strength secrecy"
                                       : "intermediate";
    std::printf("%-4d %-22s %-10.2f\n", rr, meaning,
                rsss->StorageBlowup(8192));
  }
  return 0;
}
