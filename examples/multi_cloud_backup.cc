// The paper's headline scenario end to end: an organization backs up user
// data across four clouds through CDStore servers, with two-stage dedup,
// a cloud outage during restore, and a repair of the lost cloud.
//
//   ./examples/multi_cloud_backup
#include <cstdio>

#include "src/core/client.h"
#include "src/core/server.h"
#include "src/net/transport.h"
#include "src/storage/backend.h"
#include "src/trace/synthetic.h"
#include "src/util/fs_util.h"
#include "src/util/stats.h"

using namespace cdstore;

int main() {
  std::printf("CDStore multi-cloud backup walkthrough (n=4, k=3)\n");
  std::printf("=================================================\n\n");

  TempDir dir("example");
  std::vector<std::unique_ptr<MemBackend>> backends;
  std::vector<std::unique_ptr<CdstoreServer>> servers;
  std::vector<std::unique_ptr<InProcTransport>> transports;
  std::vector<Transport*> ptrs;
  const char* cloud_names[] = {"Amazon", "Google", "Azure", "Rackspace"};
  for (int i = 0; i < 4; ++i) {
    backends.push_back(std::make_unique<MemBackend>());
    ServerOptions so;
    so.index_dir = dir.Sub("server-" + std::string(cloud_names[i]));
    auto server = CdstoreServer::Create(backends.back().get(), so);
    if (!server.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", server.status().ToString().c_str());
      return 1;
    }
    servers.push_back(std::move(server.value()));
    transports.push_back(std::make_unique<InProcTransport>(servers.back().get()));
    ptrs.push_back(transports.back().get());
    std::printf("CDStore server %d up (cloud: %s)\n", i, cloud_names[i]);
  }

  // Two users of the same organization; weekly FSL-like backups.
  auto opts = SyntheticDataset::FslDefaults(0.5);
  opts.num_users = 2;
  opts.num_weeks = 3;
  SyntheticDataset dataset(opts);

  ClientOptions co;
  CdstoreClient alice(ptrs, /*user=*/1, co);
  CdstoreClient bob(ptrs, /*user=*/2, co);

  struct NamedClient {
    CdstoreClient* client;
    const char* name;
    int dataset_user;
  };
  NamedClient named_clients[] = {{&alice, "alice", 0}, {&bob, "bob", 1}};

  // Each user runs their whole backup run through one BackupSession: the
  // encode workers and the four per-cloud uploader threads are set up once
  // and every weekly file streams through the same warm pipeline.
  std::printf("\n--- weekly backups (one session per user) ---\n");
  for (const NamedClient& nc : named_clients) {
    auto session = nc.client->OpenBackupSession();
    if (!session.ok()) {
      std::fprintf(stderr, "session failed: %s\n", session.status().ToString().c_str());
      return 1;
    }
    for (int week = 0; week < opts.num_weeks; ++week) {
      Bytes file = dataset.FileFor(nc.dataset_user, week);
      UploadStats stats;
      std::string path = "/backups/week" + std::to_string(week) + ".tar";
      if (!session.value()->Upload(path, file, &stats).ok()) {
        return 1;
      }
      double saving =
          100.0 * (1.0 - static_cast<double>(stats.transferred_share_bytes) /
                             static_cast<double>(stats.logical_share_bytes));
      std::printf("week %d %-6s: %7s logical, %4zu secrets, transferred %8s "
                  "(intra-user dedup saved %5.1f%%)\n",
                  week, nc.name, FormatSize(stats.logical_bytes).c_str(),
                  static_cast<size_t>(stats.num_secrets),
                  FormatSize(stats.transferred_share_bytes).c_str(), saving);
    }
    if (!session.value()->Close().ok()) {
      return 1;
    }
  }

  // Server-side view: inter-user dedup.
  Bytes frame = servers[0]->Handle(Encode(StatsRequest{}));
  StatsReply stats;
  (void)Decode(frame, &stats);
  std::printf("\nCloud 0 stores %llu unique shares, %s physical, %llu containers, "
              "%llu files\n",
              static_cast<unsigned long long>(stats.unique_shares),
              FormatSize(stats.stored_bytes).c_str(),
              static_cast<unsigned long long>(stats.container_count),
              static_cast<unsigned long long>(stats.file_count));

  // Restore with a cloud down.
  std::printf("\n--- disaster drill ---\n");
  transports[1]->set_connected(false);
  std::printf("Google is down. Restoring alice's week 2 backup from the rest...\n");
  auto restored = alice.Download("/backups/week2.tar");
  Bytes original = dataset.FileFor(0, 2);
  std::printf("Restore: %s (%s)\n",
              restored.ok() && restored.value() == original ? "OK" : "FAILED",
              restored.ok() ? FormatSize(restored.value().size()).c_str() : "-");
  transports[1]->set_connected(true);

  // Cloud 3 loses all data; repair re-populates it from the survivors.
  std::printf("\nRackspace loses its storage. Repairing alice's backups onto it...\n");
  servers[3].reset();  // old server flushes to its backend on shutdown
  backends[3] = std::make_unique<MemBackend>();
  ServerOptions so;
  so.index_dir = dir.Sub("server-Rackspace-rebuilt");
  auto rebuilt = CdstoreServer::Create(backends[3].get(), so);
  servers[3] = std::move(rebuilt.value());
  transports[3] = std::make_unique<InProcTransport>(servers[3].get());
  ptrs[3] = transports[3].get();
  CdstoreClient repair_client(ptrs, 1, co);
  for (int week = 0; week < opts.num_weeks; ++week) {
    std::string path = "/backups/week" + std::to_string(week) + ".tar";
    Status st = repair_client.RepairFile(path, /*target_cloud=*/3);
    std::printf("repair %s -> %s\n", path.c_str(), st.ToString().c_str());
  }
  transports[0]->set_connected(false);
  std::printf("Amazon now down; restore via the repaired Rackspace: ");
  auto again = repair_client.Download("/backups/week1.tar");
  std::printf("%s\n", again.ok() && again.value() == dataset.FileFor(0, 1) ? "OK" : "FAILED");
  return 0;
}
