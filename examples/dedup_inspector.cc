// Dedup inspector: feeds a synthetic weekly-backup workload through the
// chunker + convergent dispersal and prints, week by week, where the
// savings come from (intra-user vs inter-user), mirroring §5.4's analysis
// on a laptop-sized dataset.
//
//   ./examples/dedup_inspector [fsl|vm] [scale]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "src/chunking/chunker.h"
#include "src/dedup/fingerprint.h"
#include "src/dispersal/aont_rs.h"
#include "src/trace/synthetic.h"
#include "src/util/stats.h"

using namespace cdstore;

int main(int argc, char** argv) {
  bool vm = argc > 1 && std::strcmp(argv[1], "vm") == 0;
  double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
  auto opts = vm ? SyntheticDataset::VmDefaults(scale) : SyntheticDataset::FslDefaults(scale);
  opts.num_weeks = 8;
  SyntheticDataset dataset(opts);
  auto scheme = MakeCaontRs(4, 3);

  std::printf("Dedup inspector: %s-like dataset, %d users, %d weeks, ~%s per user-week\n",
              vm ? "VM" : "FSL", opts.num_users, opts.num_weeks,
              FormatSize(opts.user_bytes).c_str());
  std::printf("================================================================\n");
  std::printf("%-6s %-10s %-12s %-12s %-10s %-10s\n", "Week", "Logical", "Intra-dup%",
              "Inter-dup%", "Stored", "Cum.ratio");

  std::vector<std::set<Fingerprint>> per_user(opts.num_users);
  std::set<Fingerprint> global;
  uint64_t cum_logical = 0, cum_stored = 0;
  for (int week = 0; week < opts.num_weeks; ++week) {
    uint64_t logical = 0, after_intra = 0, stored = 0;
    for (int user = 0; user < opts.num_users; ++user) {
      Bytes file = dataset.FileFor(user, week);
      std::unique_ptr<Chunker> chunker;
      if (vm) {
        chunker = std::make_unique<FixedChunker>(4096);
      } else {
        chunker = std::make_unique<RabinChunker>(RabinChunkerOptions{});
      }
      for (const Bytes& chunk : ChunkBuffer(*chunker, file)) {
        uint64_t share_bytes = 4ull * scheme->ShareSize(chunk.size());
        logical += share_bytes;
        Fingerprint fp = FingerprintOf(chunk);
        if (per_user[user].insert(fp).second) {
          after_intra += share_bytes;
          if (global.insert(fp).second) {
            stored += share_bytes;
          }
        }
      }
    }
    cum_logical += logical;
    cum_stored += stored;
    std::printf("%-6d %-10s %-12.1f %-12.1f %-10s %-10.1fx\n", week + 1,
                FormatSize(logical).c_str(),
                100.0 * (1.0 - static_cast<double>(after_intra) / logical),
                after_intra == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(stored) / after_intra),
                FormatSize(stored).c_str(),
                static_cast<double>(cum_logical) / std::max<uint64_t>(1, cum_stored));
  }
  std::printf("\nCumulative dedup ratio feeds straight into the cost model "
              "(see examples/cost_explorer).\n");
  return 0;
}
