// Quickstart: the 60-second tour of convergent dispersal.
//
// Encodes a secret with CAONT-RS (n=4, k=3), shows that any k shares
// recover it, that fewer than k reveal nothing usable, that encoding is
// deterministic (the dedup enabler), and that corruption is detected.
//
//   ./examples/quickstart
#include <cstdio>

#include "src/dispersal/aont_rs.h"
#include "src/util/bytes.h"

using namespace cdstore;

int main() {
  std::printf("CDStore quickstart: CAONT-RS convergent dispersal\n");
  std::printf("==================================================\n\n");

  // A "secret" — in CDStore this would be one ~8KB chunk of a backup.
  Bytes secret = BytesOf(
      "Customer database dump, 2015-05-29. "
      "Contains everything we would rather not leak to a single cloud.");
  std::printf("Secret (%zu bytes): \"%.50s...\"\n\n", secret.size(), secret.data());

  // 1. Disperse into n=4 shares, any k=3 of which reconstruct.
  auto scheme = MakeCaontRs(/*n=*/4, /*k=*/3);
  std::vector<Bytes> shares;
  if (!scheme->Encode(secret, &shares).ok()) {
    return 1;
  }
  std::printf("Dispersed into %zu shares of %zu bytes each (storage blowup %.2fx;"
              " plain replication would be 4x)\n",
              shares.size(), shares[0].size(), scheme->StorageBlowup(secret.size()));
  for (int i = 0; i < 4; ++i) {
    std::printf("  share %d -> cloud %d: %s...\n", i, i,
                HexEncode(ConstByteSpan(shares[i].data(), 8)).c_str());
  }

  // 2. Recover from any k shares — here clouds {0, 2, 3} (cloud 1 is down).
  Bytes restored;
  if (!scheme->Decode({0, 2, 3}, {shares[0], shares[2], shares[3]}, secret.size(), &restored)
           .ok()) {
    return 1;
  }
  std::printf("\nRecovered from clouds {0,2,3}: \"%.50s...\" -> %s\n", restored.data(),
              restored == secret ? "MATCH" : "MISMATCH");

  // 3. Convergence: a second client encoding the same secret produces
  //    byte-identical shares, so the clouds can deduplicate them.
  auto another_client = MakeCaontRs(4, 3);
  std::vector<Bytes> shares2;
  (void)another_client->Encode(secret, &shares2);
  std::printf("Another client, same secret -> identical shares? %s (this enables dedup)\n",
              shares == shares2 ? "YES" : "NO");

  // 4. Integrity: tamper with a share and decoding refuses.
  shares[0][5] ^= 0x01;
  Bytes tampered;
  Status st = scheme->Decode({0, 1, 2}, {shares[0], shares[1], shares[2]}, secret.size(),
                             &tampered);
  std::printf("Decoding with a tampered share: %s\n", st.ToString().c_str());

  // 5. ...but brute-force subset decoding rides through (§3.2).
  st = DecodeWithBruteForce(*scheme, {0, 1, 2, 3},
                            {shares[0], shares[1], shares[2], shares[3]}, secret.size(),
                            &tampered);
  std::printf("Brute-force over k-subsets: %s -> %s\n", st.ToString().c_str(),
              tampered == secret ? "recovered" : "failed");
  return 0;
}
